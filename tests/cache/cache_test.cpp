#include <gtest/gtest.h>

#include <memory>

#include "cache/cache_sim.h"
#include "core/estimators/ips.h"
#include "cache/evictors.h"
#include "cache/slot_policy.h"
#include "cache/store.h"
#include "cache/workload.h"

namespace harvest::cache {
namespace {

ItemMeta make_meta(Key key, std::size_t size, double insert, double last,
                   std::uint64_t count) {
  ItemMeta m;
  m.key = key;
  m.size_bytes = size;
  m.insert_time = insert;
  m.last_access = last;
  m.access_count = count;
  return m;
}

TEST(ItemMetaTest, DerivedFeatures) {
  const ItemMeta m = make_meta(1, 2048, 10.0, 15.0, 20);
  EXPECT_DOUBLE_EQ(m.idle_time(18.0), 3.0);
  EXPECT_DOUBLE_EQ(m.access_rate(20.0), 2.0);
  const auto f = m.to_features(20.0);
  ASSERT_EQ(f.size(), ItemMeta::kNumFeatures);
  EXPECT_DOUBLE_EQ(f[0], 2.0);   // size KB
  EXPECT_DOUBLE_EQ(f[1], 5.0);   // idle
  EXPECT_DOUBLE_EQ(f[2], 2.0);   // rate
  EXPECT_DOUBLE_EQ(f[3], 10.0);  // age
}

TEST(CacheStoreTest, NeverExceedsCapacity) {
  CacheStore store(10000, 5);
  RandomEvictor evictor;
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    store.insert(static_cast<Key>(i % 300), 97, i * 0.01, evictor, rng);
    ASSERT_LE(store.used_bytes(), store.capacity_bytes());
  }
  EXPECT_GT(store.evictions(), 0u);
}

TEST(CacheStoreTest, LookupUpdatesMetadata) {
  CacheStore store(1000, 3);
  RandomEvictor evictor;
  util::Rng rng(2);
  store.insert(7, 100, 1.0, evictor, rng);
  EXPECT_TRUE(store.lookup(7, 2.0));
  EXPECT_FALSE(store.lookup(8, 2.0));
  const auto meta = store.meta(7);
  ASSERT_TRUE(meta);
  EXPECT_DOUBLE_EQ(meta->last_access, 2.0);
  EXPECT_EQ(meta->access_count, 2u);  // insert + lookup
}

TEST(CacheStoreTest, RefreshingExistingKeyChangesSize) {
  CacheStore store(1000, 3);
  RandomEvictor evictor;
  util::Rng rng(3);
  store.insert(1, 100, 1.0, evictor, rng);
  store.insert(1, 300, 2.0, evictor, rng);
  EXPECT_EQ(store.used_bytes(), 300u);
  EXPECT_EQ(store.size_items(), 1u);
}

TEST(CacheStoreTest, EvictionObserverSeesSampledCandidates) {
  CacheStore store(500, 3);
  RandomEvictor evictor;
  util::Rng rng(4);
  std::size_t events = 0;
  store.set_eviction_observer([&](const EvictionEvent& ev) {
    ++events;
    EXPECT_GE(ev.candidates.size(), 1u);
    EXPECT_LE(ev.candidates.size(), 3u);
    EXPECT_LT(ev.chosen, ev.candidates.size());
    ASSERT_EQ(ev.choice_distribution.size(), ev.candidates.size());
    double sum = 0;
    for (double p : ev.choice_distribution) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  });
  for (int i = 0; i < 100; ++i) {
    store.insert(static_cast<Key>(i), 100, i * 0.1, evictor, rng);
  }
  EXPECT_GT(events, 0u);
}

TEST(CacheStoreTest, OversizedItemRejected) {
  CacheStore store(100, 3);
  RandomEvictor evictor;
  util::Rng rng(5);
  EXPECT_THROW(store.insert(1, 200, 0.0, evictor, rng),
               std::invalid_argument);
}

TEST(EvictorTest, LruPicksLongestIdle) {
  LruEvictor lru;
  util::Rng rng(6);
  const std::vector<ItemMeta> cands{make_meta(0, 100, 0, 9.0, 1),
                                    make_meta(1, 100, 0, 2.0, 1),
                                    make_meta(2, 100, 0, 5.0, 1)};
  EXPECT_EQ(lru.choose(cands, 10.0, rng), 1u);  // idle 8 s
  EXPECT_DOUBLE_EQ(lru.distribution(cands, 10.0)[1], 1.0);
}

TEST(EvictorTest, LfuPicksLowestCount) {
  LfuEvictor lfu;
  util::Rng rng(7);
  const std::vector<ItemMeta> cands{make_meta(0, 100, 0, 0, 9),
                                    make_meta(1, 100, 0, 0, 2),
                                    make_meta(2, 100, 0, 0, 5)};
  EXPECT_EQ(lfu.choose(cands, 1.0, rng), 1u);
}

TEST(EvictorTest, FreqSizePrefersEvictingBigColdPerByte) {
  FreqSizeEvictor fs;
  util::Rng rng(8);
  // Candidate 0: rate 2/s, 4 KB -> 0.5 per KB. Candidate 1: rate 1/s, 1 KB
  // -> 1.0 per KB. Evict candidate 0 (the paper's large-item case).
  const std::vector<ItemMeta> cands{make_meta(0, 4096, 0, 0, 20),
                                    make_meta(1, 1024, 0, 0, 10)};
  EXPECT_EQ(fs.choose(cands, 10.0, rng), 0u);
}

TEST(EvictorTest, RandomIsUniform) {
  RandomEvictor random;
  util::Rng rng(9);
  const std::vector<ItemMeta> cands{make_meta(0, 1, 0, 0, 1),
                                    make_meta(1, 1, 0, 0, 1),
                                    make_meta(2, 1, 0, 0, 1)};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[random.choose(cands, 1.0, rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
  for (double p : random.distribution(cands, 1.0)) {
    EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
  }
}

TEST(EvictorTest, GdsInflationMakesEvictionsStickier) {
  GreedyDualSizeEvictor gds;
  util::Rng rng(10);
  const std::vector<ItemMeta> cands{make_meta(0, 4096, 0, 0, 4),
                                    make_meta(1, 256, 0, 0, 4)};
  // Lowest H = rate/size: candidate 0.
  EXPECT_EQ(gds.choose(cands, 10.0, rng), 0u);
}

TEST(BigSmallWorkloadTest, SizesAndShares) {
  BigSmallWorkload::Config cfg;
  cfg.num_large = 10;
  cfg.num_small = 90;
  cfg.large_size = 4096;
  cfg.small_size = 1024;
  cfg.large_weight = 2.0;
  cfg.small_weight = 1.0;
  BigSmallWorkload wl(cfg);
  EXPECT_EQ(wl.num_keys(), 100u);
  EXPECT_EQ(wl.size_of(0), 4096u);
  EXPECT_EQ(wl.size_of(10), 1024u);
  EXPECT_TRUE(wl.is_large(9));
  EXPECT_FALSE(wl.is_large(10));
  EXPECT_EQ(wl.working_set_bytes(), 10u * 4096 + 90u * 1024);
  // Large share of traffic: 20/110.
  util::Rng rng(11);
  int large = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) large += wl.is_large(wl.next(rng)) ? 1 : 0;
  EXPECT_NEAR(large / static_cast<double>(n), 20.0 / 110.0, 0.01);
}

TEST(ZipfWorkloadTest, PopularKeysDominate) {
  ZipfWorkload::Config cfg;
  cfg.num_keys = 1000;
  cfg.exponent = 1.0;
  ZipfWorkload wl(cfg);
  util::Rng rng(40);
  std::size_t top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) top10 += wl.next(rng) < 10 ? 1 : 0;
  // Top 10 of 1000 keys under Zipf(1.0) carry ~39% of traffic.
  EXPECT_NEAR(static_cast<double>(top10) / n, 0.39, 0.03);
}

TEST(BigSmallWorkloadTest, OptionalZipfSkewWithinSmalls) {
  BigSmallWorkload::Config cfg;
  cfg.num_large = 0;
  cfg.num_small = 100;
  cfg.small_zipf_skew = 1.0;
  BigSmallWorkload wl(cfg);
  util::Rng rng(41);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[wl.next(rng)];
  EXPECT_GT(counts[0], 3 * counts[50]);
}

TEST(CacheSimTest, EvictionPoolConfigFlowsThrough) {
  BigSmallWorkload wl({});
  CacheConfig config = table3_config(wl);
  config.num_requests = 30000;
  config.warmup_requests = 5000;
  config.eviction_pool = 16;
  config.keep_log = false;
  FreqSizeEvictor fs;
  util::Rng rng(42);
  const CacheResult result = run_cache(config, wl, fs, rng);
  EXPECT_GT(result.hit_rate, 0.3);  // runs correctly with the pool enabled
}

TEST(ZipfWorkloadTest, DeterministicSizesWithinRange) {
  ZipfWorkload::Config cfg;
  cfg.num_keys = 100;
  cfg.min_size = 64;
  cfg.max_size = 4096;
  ZipfWorkload wl(cfg);
  for (Key k = 0; k < 100; ++k) {
    const std::size_t s = wl.size_of(k);
    EXPECT_GE(s, 63u);
    EXPECT_LE(s, 4096u);
    EXPECT_EQ(s, wl.size_of(k));  // deterministic
  }
}

CacheConfig small_cache_config(const Workload& wl) {
  CacheConfig config = table3_config(wl);
  config.num_requests = 30000;
  config.warmup_requests = 5000;
  return config;
}

TEST(CacheSimTest, HitRateAccounting) {
  BigSmallWorkload wl({});
  CacheConfig config = small_cache_config(wl);
  RandomEvictor evictor;
  util::Rng rng(12);
  const CacheResult result = run_cache(config, wl, evictor, rng);
  EXPECT_EQ(result.hits + result.misses, result.measured_requests);
  EXPECT_NEAR(result.hit_rate,
              static_cast<double>(result.hits) / result.measured_requests,
              1e-12);
  EXPECT_GT(result.hit_rate, 0.1);
  EXPECT_LT(result.hit_rate, 0.95);
  EXPECT_GT(result.evictions, 0u);
}

TEST(CacheSimTest, LogContainsAccessesAndEvictions) {
  BigSmallWorkload wl({});
  CacheConfig config = small_cache_config(wl);
  RandomEvictor evictor;
  util::Rng rng(13);
  const CacheResult result = run_cache(config, wl, evictor, rng);
  std::size_t accesses = 0, evicts = 0;
  for (const auto& rec : result.log.records()) {
    if (rec.event == "access") ++accesses;
    if (rec.event == "evict") ++evicts;
  }
  EXPECT_EQ(accesses, result.measured_requests);
  EXPECT_GT(evicts, 0u);
}

TEST(CacheSimTest, HarvestRewardsMatchLookahead) {
  BigSmallWorkload wl({});
  CacheConfig config = small_cache_config(wl);
  RandomEvictor evictor;
  util::Rng rng(14);
  const CacheResult result = run_cache(config, wl, evictor, rng);
  const EvictionHarvest harvest =
      harvest_evictions(result.log, config.eviction_samples, 30.0);
  EXPECT_GT(harvest.slot_data.size(), 100u);
  EXPECT_EQ(harvest.slot_data.size(), harvest.victim_samples.size());
  for (const auto& pt : harvest.slot_data.points()) {
    EXPECT_GE(pt.reward, 0.0);
    EXPECT_LE(pt.reward, 1.0);
    EXPECT_DOUBLE_EQ(pt.propensity, 1.0 / config.eviction_samples);
    EXPECT_EQ(pt.context.size(),
              config.eviction_samples * ItemMeta::kNumFeatures);
  }
  // Some victims are re-accessed quickly (hot large items) -> reward < 1;
  // some never again within horizon -> reward == 1.
  bool saw_low = false, saw_max = false;
  for (const auto& [f, r] : harvest.victim_samples) {
    saw_low |= r < 0.5;
    saw_max |= r == 1.0;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_max);
}

TEST(CacheSimTest, TrainedCbModelPredictsHotItemsReturnSooner) {
  BigSmallWorkload wl({});
  CacheConfig config = small_cache_config(wl);
  RandomEvictor evictor;
  util::Rng rng(15);
  const CacheResult result = run_cache(config, wl, evictor, rng);
  const EvictionHarvest harvest =
      harvest_evictions(result.log, config.eviction_samples, 30.0);
  const core::RewardModelPtr model = train_cb_eviction_model(harvest);
  // The decision-relevant property (the §5 failure mechanism): the model
  // predicts that a *typical large* item returns sooner (lower
  // time-to-next-access reward) than a *typical small* item, so greedy CB
  // keeps the large items. Average the prediction over real victims of
  // each class (feature 0 is size in KB; large = 4 KB).
  double large_pred = 0, small_pred = 0;
  std::size_t large_n = 0, small_n = 0;
  for (const auto& [features, reward] : harvest.victim_samples) {
    const double pred = model->predict(features, 0);
    if (features[0] > 2.0) {
      large_pred += pred;
      ++large_n;
    } else {
      small_pred += pred;
      ++small_n;
    }
  }
  ASSERT_GT(large_n, 0u);
  ASSERT_GT(small_n, 0u);
  EXPECT_LT(large_pred / static_cast<double>(large_n),
            small_pred / static_cast<double>(small_n));
}

TEST(CacheSimTest, ObserverReportsEachMeasuredAccess) {
  BigSmallWorkload wl({});
  CacheConfig config = small_cache_config(wl);
  std::size_t observed = 0;
  config.on_access = [&](Key, bool) { ++observed; };
  RandomEvictor evictor;
  util::Rng rng(16);
  const CacheResult result = run_cache(config, wl, evictor, rng);
  EXPECT_EQ(observed, result.measured_requests);
}

TEST(CacheStoreTest, EvictionPoolRetainsRunnersUp) {
  // With a pool, runner-up candidates from one decision reappear in the
  // next decision's candidate set.
  CacheStore store(5 * 100, 3, /*pool_size=*/4);
  LruEvictor lru;
  util::Rng rng(20);
  std::vector<std::vector<Key>> candidate_sets;
  store.set_eviction_observer([&](const EvictionEvent& ev) {
    std::vector<Key> keys;
    for (const auto& c : ev.candidates) keys.push_back(c.key);
    candidate_sets.push_back(std::move(keys));
  });
  for (int i = 0; i < 60; ++i) {
    store.insert(static_cast<Key>(i), 100, i * 0.1, lru, rng);
    ASSERT_LE(store.used_bytes(), store.capacity_bytes());
  }
  ASSERT_GT(candidate_sets.size(), 2u);
  // Consecutive decisions share at least one candidate via the pool
  // (unless every pooled key was itself evicted/expired meanwhile).
  std::size_t overlaps = 0;
  for (std::size_t i = 1; i < candidate_sets.size(); ++i) {
    for (Key k : candidate_sets[i]) {
      for (Key prev : candidate_sets[i - 1]) {
        if (k == prev) {
          ++overlaps;
          goto next;
        }
      }
    }
  next:;
  }
  EXPECT_GT(overlaps, candidate_sets.size() / 2);
}

TEST(CacheStoreTest, EvictionPoolImprovesApproximatedLru) {
  // Sharper approximation: with the pool, sampled LRU's victims should be
  // idle longer on average than without it.
  auto mean_victim_idle = [](std::size_t pool) {
    CacheStore store(40 * 100, 3, pool);
    LruEvictor lru;
    util::Rng rng(21);
    double idle_sum = 0;
    std::size_t n = 0;
    double now = 0;
    store.set_eviction_observer([&](const EvictionEvent& ev) {
      idle_sum += ev.candidates[ev.chosen].idle_time(ev.time);
      ++n;
    });
    for (int i = 0; i < 4000; ++i) {
      now = i * 0.01;
      const Key key = static_cast<Key>(rng.uniform_index(200));
      if (!store.lookup(key, now)) store.insert(key, 100, now, lru, rng);
    }
    return n == 0 ? 0.0 : idle_sum / static_cast<double>(n);
  };
  EXPECT_GT(mean_victim_idle(8), mean_victim_idle(0));
}

TEST(CostAwareCbEvictorTest, PrefersEvictingLargeItemsOfEqualHotness) {
  // Model: constant prediction. Cost-aware scoring then reduces to "evict
  // the biggest" — the size term alone flips the greedy CB preference.
  class ConstantModel final : public core::RewardModel {
   public:
    double predict(const core::FeatureVector&,
                   core::ActionId) const override {
      return 0.5;
    }
    std::size_t num_actions() const override { return 1; }
    std::string name() const override { return "const"; }
  };
  CostAwareCbEvictor evictor(std::make_shared<ConstantModel>());
  util::Rng rng(50);
  const std::vector<ItemMeta> cands{make_meta(0, 1024, 0, 0, 5),
                                    make_meta(1, 4096, 0, 0, 5),
                                    make_meta(2, 512, 0, 0, 5)};
  EXPECT_EQ(evictor.choose(cands, 10.0, rng), 1u);
  EXPECT_DOUBLE_EQ(evictor.distribution(cands, 10.0)[1], 1.0);
  EXPECT_THROW(CostAwareCbEvictor(nullptr), std::invalid_argument);
}

TEST(CostAwareCbEvictorTest, RecoversSizeAwareBehaviourEndToEnd) {
  // Trained on harvested random-eviction data, the cost-aware variant must
  // clearly beat the plain greedy CB evictor on the big/small workload.
  BigSmallWorkload wl({});
  CacheConfig config = table3_config(wl);
  config.num_requests = 60000;
  config.warmup_requests = 10000;
  RandomEvictor logging;
  util::Rng rng(51);
  const CacheResult logged = run_cache(config, wl, logging, rng);
  const EvictionHarvest harvest =
      harvest_evictions(logged.log, config.eviction_samples, 30.0);
  const core::RewardModelPtr model = train_cb_eviction_model(harvest);

  config.keep_log = false;
  CbEvictor greedy(model);
  CostAwareCbEvictor cost_aware(model);
  util::Rng rng1(52), rng2(52);
  const double hr_greedy = run_cache(config, wl, greedy, rng1).hit_rate;
  const double hr_cost = run_cache(config, wl, cost_aware, rng2).hit_rate;
  EXPECT_GT(hr_cost, hr_greedy + 0.04);
}

TEST(SlotPolicyTest, MetaRoundtripThroughFeatures) {
  const ItemMeta original = make_meta(7, 4096, -10.0, -2.0, 9);
  const core::FeatureVector f = original.to_features(0.0);
  const ItemMeta rebuilt = meta_from_features(f, 0);
  EXPECT_EQ(rebuilt.size_bytes, original.size_bytes);
  EXPECT_DOUBLE_EQ(rebuilt.idle_time(0.0), original.idle_time(0.0));
  EXPECT_NEAR(rebuilt.access_rate(0.0), original.access_rate(0.0), 0.1);
  EXPECT_THROW(meta_from_features(f, 1), std::out_of_range);
}

TEST(SlotPolicyTest, MatchesEvictorChoice) {
  // Context: slot 0 idle 9s, slot 1 idle 1s -> LRU evicts slot 0.
  const ItemMeta idle_long = make_meta(0, 1024, -20.0, -9.0, 5);
  const ItemMeta idle_short = make_meta(1, 1024, -20.0, -1.0, 5);
  std::vector<double> ctx;
  for (const ItemMeta* m : {&idle_long, &idle_short}) {
    const core::FeatureVector f = m->to_features(0.0);
    ctx.insert(ctx.end(), f.values().begin(), f.values().end());
  }
  const EvictorSlotPolicy policy(std::make_shared<LruEvictor>(), 2);
  const auto dist = policy.distribution(core::FeatureVector(ctx));
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
}

TEST(SlotPolicyTest, RandomEvictorGivesUniformPropensities) {
  const EvictorSlotPolicy policy(std::make_shared<RandomEvictor>(), 5);
  const core::FeatureVector ctx(
      std::vector<double>(5 * ItemMeta::kNumFeatures, 1.0));
  for (double p : policy.distribution(ctx)) EXPECT_DOUBLE_EQ(p, 0.2);
}

TEST(SlotPolicyTest, Validation) {
  EXPECT_THROW(EvictorSlotPolicy(nullptr, 3), std::invalid_argument);
  EXPECT_THROW(EvictorSlotPolicy(std::make_shared<LruEvictor>(), 0),
               std::invalid_argument);
  const EvictorSlotPolicy policy(std::make_shared<LruEvictor>(), 3);
  EXPECT_THROW(policy.distribution(core::FeatureVector{1.0, 2.0}),
               std::invalid_argument);
}

TEST(SlotPolicyTest, OfflineEvaluationOnHarvestedSlots) {
  // End-to-end: IPS on harvested slot data scores the logging policy
  // (random) near the data's mean reward.
  BigSmallWorkload wl({});
  CacheConfig config = small_cache_config(wl);
  RandomEvictor evictor;
  util::Rng rng(30);
  const CacheResult result = run_cache(config, wl, evictor, rng);
  const EvictionHarvest harvest =
      harvest_evictions(result.log, config.eviction_samples, 30.0);
  double mean_reward = 0;
  for (const auto& pt : harvest.slot_data.points()) {
    mean_reward += pt.reward;
  }
  mean_reward /= static_cast<double>(harvest.slot_data.size());

  const core::IpsEstimator ips;
  const EvictorSlotPolicy random_policy(std::make_shared<RandomEvictor>(),
                                        config.eviction_samples);
  const core::Estimate est = ips.evaluate(harvest.slot_data, random_policy);
  EXPECT_NEAR(est.value, mean_reward, 0.01);
}

TEST(CacheSimTest, Validation) {
  BigSmallWorkload wl({});
  RandomEvictor evictor;
  util::Rng rng(17);
  CacheConfig config;  // zero capacity
  EXPECT_THROW(run_cache(config, wl, evictor, rng), std::invalid_argument);
  EXPECT_THROW(harvest_evictions(logs::LogStore{}, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(harvest_evictions(logs::LogStore{}, 5, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::cache
