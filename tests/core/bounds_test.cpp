#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace harvest::core {
namespace {

constexpr BoundParams kParams{2.0, 0.05};

TEST(BoundsTest, CbWidthFormula) {
  // width = sqrt(C/(eps N) * log(K/delta)).
  const double w = cb_ci_width(1e6, 1e6, 0.04, kParams);
  const double expected =
      std::sqrt(2.0 / (0.04 * 1e6) * std::log(1e6 / 0.05));
  EXPECT_NEAR(w, expected, 1e-12);
}

TEST(BoundsTest, AbWidthFormula) {
  const double w = ab_ci_width(1e6, 100, kParams);
  const double expected =
      2.0 * std::sqrt(100 / 1e6) * std::log(100 / 0.05);
  EXPECT_NEAR(w, expected, 1e-12);
}

TEST(BoundsTest, CbWidthMonotonicity) {
  // More data, more exploration -> tighter; more policies -> looser.
  EXPECT_LT(cb_ci_width(2e6, 1e6, 0.04, kParams),
            cb_ci_width(1e6, 1e6, 0.04, kParams));
  EXPECT_LT(cb_ci_width(1e6, 1e6, 0.08, kParams),
            cb_ci_width(1e6, 1e6, 0.04, kParams));
  EXPECT_GT(cb_ci_width(1e6, 1e9, 0.04, kParams),
            cb_ci_width(1e6, 1e6, 0.04, kParams));
}

TEST(BoundsTest, RequiredNInvertsWidth) {
  const double n = cb_required_n(1e6, 0.04, 0.05, kParams);
  EXPECT_NEAR(cb_ci_width(n, 1e6, 0.04, kParams), 0.05, 1e-9);
  const double n_ab = ab_required_n(1e4, 0.05, kParams);
  EXPECT_NEAR(ab_ci_width(n_ab, 1e4, kParams), 0.05, 1e-9);
}

TEST(BoundsTest, DoublingEpsilonHalvesRequiredN) {
  // The §4 insight: "doubling eps from 0.02 to 0.04 halves the data".
  const double n_low = cb_required_n(1e6, 0.02, 0.05, kParams);
  const double n_high = cb_required_n(1e6, 0.04, 0.05, kParams);
  EXPECT_NEAR(n_low / n_high, 2.0, 1e-9);
}

TEST(BoundsTest, CbExponentiallyMoreEfficientThanAb) {
  // Fig. 1's claim: at equal N and target error, CB evaluates exponentially
  // more policies. Equivalently, required N for K policies grows log K for
  // CB but ~K log^2 K for A/B.
  const double eps = 0.04;
  for (double k : {1e2, 1e4, 1e6}) {
    const double n_cb = cb_required_n(k, eps, 0.05, kParams);
    const double n_ab = ab_required_n(k, 0.05, kParams);
    EXPECT_LT(n_cb, n_ab) << "K=" << k;
  }
  // The ratio grows with K.
  const double r4 = ab_required_n(1e4, 0.05, kParams) /
                    cb_required_n(1e4, 0.04, 0.05, kParams);
  const double r8 = ab_required_n(1e8, 0.05, kParams) /
                    cb_required_n(1e8, 0.04, 0.05, kParams);
  EXPECT_GT(r8, 100 * r4);
}

TEST(BoundsTest, DiminishingReturns) {
  // §4: "increasing N from 1.7 to 3.4 million improves accuracy by less
  // than 0.01" (eps = 0.04, K = 1e6, delta = 0.05).
  const double w1 = cb_ci_width(1.7e6, 1e6, 0.04, kParams);
  const double w2 = cb_ci_width(3.4e6, 1e6, 0.04, kParams);
  EXPECT_LT(w1 - w2, 0.01);
  EXPECT_GT(w1 - w2, 0.0);
}

TEST(BoundsTest, MaxPolicyClassSizeInvertsWidth) {
  const double k = max_policy_class_size(1e6, 0.04, 0.05, kParams);
  EXPECT_NEAR(cb_ci_width(1e6, k, 0.04, kParams), 0.05, 1e-9);
  // More logged decisions -> exponentially larger evaluable class.
  EXPECT_GT(max_policy_class_size(2e6, 0.04, 0.05, kParams), k * k / 10);
}

TEST(BoundsTest, Validation) {
  EXPECT_THROW(cb_ci_width(0, 10, 0.1, kParams), std::invalid_argument);
  EXPECT_THROW(cb_ci_width(10, 0.5, 0.1, kParams), std::invalid_argument);
  EXPECT_THROW(cb_ci_width(10, 10, 0.0, kParams), std::invalid_argument);
  EXPECT_THROW(cb_ci_width(10, 10, 1.5, kParams), std::invalid_argument);
  EXPECT_THROW(cb_required_n(10, 0.1, 0.0, kParams), std::invalid_argument);
  EXPECT_THROW(ab_ci_width(10, 10, BoundParams{0.0, 0.05}),
               std::invalid_argument);
  EXPECT_THROW(ab_ci_width(10, 10, BoundParams{1.0, 1.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
