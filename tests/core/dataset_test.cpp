#include "core/dataset.h"

#include <gtest/gtest.h>

#include "core/policies/basic.h"

namespace harvest::core {
namespace {

ExplorationPoint make_point(double feature, ActionId a, double r, double p) {
  return ExplorationPoint{FeatureVector{feature}, a, r, p};
}

TEST(ExplorationDatasetTest, AddValidation) {
  ExplorationDataset data(3, RewardRange{0, 1});
  data.add(make_point(1.0, 2, 0.5, 0.3));
  EXPECT_EQ(data.size(), 1u);
  EXPECT_THROW(data.add(make_point(1.0, 3, 0.5, 0.3)), std::invalid_argument);
  EXPECT_THROW(data.add(make_point(1.0, 0, 0.5, 0.0)), std::invalid_argument);
  EXPECT_THROW(data.add(make_point(1.0, 0, 0.5, 1.5)), std::invalid_argument);
}

TEST(ExplorationDatasetTest, MinPropensity) {
  ExplorationDataset data(2, RewardRange{0, 1});
  EXPECT_DOUBLE_EQ(data.min_propensity(), 0.0);
  data.add(make_point(0, 0, 0.5, 0.5));
  data.add(make_point(0, 1, 0.5, 0.125));
  EXPECT_DOUBLE_EQ(data.min_propensity(), 0.125);
}

TEST(ExplorationDatasetTest, SplitAndPrefix) {
  ExplorationDataset data(2, RewardRange{0, 1});
  for (int i = 0; i < 10; ++i) {
    data.add(make_point(i, 0, 0.1, 0.5));
  }
  const auto [train, test] = data.split(0.7);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_DOUBLE_EQ(train[0].context[0], 0.0);
  EXPECT_DOUBLE_EQ(test[0].context[0], 7.0);
  const auto prefix = data.prefix(4);
  EXPECT_EQ(prefix.size(), 4u);
  EXPECT_EQ(data.prefix(100).size(), 10u);
}

TEST(ExplorationDatasetTest, ShuffleKeepsMultiset) {
  ExplorationDataset data(2, RewardRange{0, 1});
  for (int i = 0; i < 20; ++i) data.add(make_point(i, 0, 0.1, 0.5));
  util::Rng rng(1);
  data.shuffle(rng);
  double sum = 0;
  for (const auto& pt : data.points()) sum += pt.context[0];
  EXPECT_DOUBLE_EQ(sum, 190.0);
}

TEST(FullFeedbackDatasetTest, TrueValueOfConstantPolicy) {
  FullFeedbackDataset data(2, RewardRange{0, 1});
  data.add(FullFeedbackPoint{FeatureVector{0.0}, {0.2, 0.8}});
  data.add(FullFeedbackPoint{FeatureVector{1.0}, {0.4, 0.6}});
  const ConstantPolicy pick0(2, 0);
  const ConstantPolicy pick1(2, 1);
  EXPECT_DOUBLE_EQ(data.true_value(pick0), 0.3);
  EXPECT_DOUBLE_EQ(data.true_value(pick1), 0.7);
  EXPECT_DOUBLE_EQ(data.best_value(), 0.7);
}

TEST(FullFeedbackDatasetTest, TrueValueOfRandomizedPolicy) {
  FullFeedbackDataset data(2, RewardRange{0, 1});
  data.add(FullFeedbackPoint{FeatureVector{0.0}, {0.0, 1.0}});
  const UniformRandomPolicy uniform(2);
  EXPECT_DOUBLE_EQ(data.true_value(uniform), 0.5);
}

TEST(FullFeedbackDatasetTest, SimulateExplorationRevealsChosenReward) {
  FullFeedbackDataset data(3, RewardRange{0, 1});
  for (int i = 0; i < 500; ++i) {
    data.add(FullFeedbackPoint{FeatureVector{static_cast<double>(i)},
                               {0.1, 0.5, 0.9}});
  }
  util::Rng rng(5);
  const UniformRandomPolicy logging(3);
  const ExplorationDataset exp = data.simulate_exploration(logging, rng);
  ASSERT_EQ(exp.size(), 500u);
  int counts[3] = {0, 0, 0};
  for (const auto& pt : exp.points()) {
    EXPECT_DOUBLE_EQ(pt.propensity, 1.0 / 3.0);
    // Revealed reward must equal the true reward of the logged action.
    const double expected = pt.action == 0 ? 0.1 : (pt.action == 1 ? 0.5 : 0.9);
    EXPECT_DOUBLE_EQ(pt.reward, expected);
    ++counts[pt.action];
  }
  for (int c : counts) EXPECT_GT(c, 100);
}

TEST(FullFeedbackDatasetTest, RejectsRaggedRewards) {
  FullFeedbackDataset data(3, RewardRange{0, 1});
  EXPECT_THROW(data.add(FullFeedbackPoint{FeatureVector{0.0}, {0.1, 0.2}}),
               std::invalid_argument);
}

TEST(FeatureVectorTest, BiasDotAndNorm) {
  const FeatureVector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(x.norm(), 5.0);
  const FeatureVector xb = x.with_bias();
  ASSERT_EQ(xb.size(), 3u);
  EXPECT_DOUBLE_EQ(xb[0], 1.0);
  const std::vector<double> w{10.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(xb.dot(w), 17.0);
}

TEST(FeatureSchemaTest, NamesAndLookup) {
  const FeatureSchema schema({"load", "cpu"});
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.name(1), "cpu");
  EXPECT_EQ(schema.index_of("load"), 0u);
  EXPECT_THROW(schema.index_of("missing"), std::out_of_range);
  EXPECT_THROW(schema.name(2), std::out_of_range);
}

}  // namespace
}  // namespace harvest::core
