// Property tests of the paper's central claim about IPS (§4): it is an
// *unbiased* estimator of any policy's value, for any logging policy with
// full support — verified here by Monte-Carlo across seeds, logging
// policies, and candidate policies on a synthetic full-feedback environment.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/estimators/direct.h"
#include "core/estimators/ips.h"
#include "core/policies/basic.h"
#include "core/reward_model.h"
#include "stats/summary.h"
#include "testing/fixtures.h"

namespace harvest::core {
namespace {

using harvest::testing::make_candidate_policy;
using harvest::testing::make_environment;
using harvest::testing::make_logging_policy;

using Combo = std::tuple<int, int>;  // (logging kind, candidate kind)

class IpsUnbiasedness : public ::testing::TestWithParam<Combo> {};

TEST_P(IpsUnbiasedness, MeanOfEstimatesMatchesTruth) {
  const auto [log_kind, cand_kind] = GetParam();
  util::Rng rng(1000 + log_kind * 10 + cand_kind);
  const FullFeedbackDataset env = make_environment(800, rng);
  const PolicyPtr logging = make_logging_policy(log_kind);
  const PolicyPtr candidate = make_candidate_policy(cand_kind);
  const double truth = env.true_value(*candidate);

  const IpsEstimator ips;
  stats::Summary estimates;
  const int replications = 60;
  for (int r = 0; r < replications; ++r) {
    const ExplorationDataset exp = env.simulate_exploration(*logging, rng);
    estimates.add(ips.evaluate(exp, *candidate).value);
  }
  // The mean of many independent IPS estimates converges to the truth;
  // allow 4 standard errors.
  EXPECT_NEAR(estimates.mean(), truth, 4 * estimates.stderr_mean() + 1e-9)
      << "logging=" << log_kind << " candidate=" << cand_kind;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, IpsUnbiasedness,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2)));

class SnipsConsistency : public ::testing::TestWithParam<Combo> {};

TEST_P(SnipsConsistency, ConvergesToTruthOnLargeSamples) {
  const auto [log_kind, cand_kind] = GetParam();
  util::Rng rng(2000 + log_kind * 10 + cand_kind);
  const FullFeedbackDataset env = make_environment(20000, rng);
  const PolicyPtr logging = make_logging_policy(log_kind);
  const PolicyPtr candidate = make_candidate_policy(cand_kind);
  const double truth = env.true_value(*candidate);

  const SnipsEstimator snips;
  const ExplorationDataset exp = env.simulate_exploration(*logging, rng);
  EXPECT_NEAR(snips.evaluate(exp, *candidate).value, truth, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SnipsConsistency,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2)));

TEST(EstimatorVariance, SnipsNoNoisierThanIpsUnderRewardShift) {
  // Shift-invariance: SNIPS is stable when rewards have a large common
  // offset; IPS variance blows up. (Motivates self-normalization.)
  util::Rng rng(31);
  FullFeedbackDataset env(2, RewardRange{0, 1});
  for (int i = 0; i < 2000; ++i) {
    env.add(FullFeedbackPoint{FeatureVector{rng.uniform()}, {0.9, 0.85}});
  }
  const UniformRandomPolicy logging(2);
  const ConstantPolicy candidate(2, 0);
  const IpsEstimator ips;
  const SnipsEstimator snips;
  stats::Summary ips_vals, snips_vals;
  for (int r = 0; r < 40; ++r) {
    const ExplorationDataset exp = env.simulate_exploration(logging, rng);
    const auto small = exp.prefix(200);
    ips_vals.add(ips.evaluate(small, candidate).value);
    snips_vals.add(snips.evaluate(small, candidate).value);
  }
  EXPECT_LT(snips_vals.stddev(), ips_vals.stddev());
}

TEST(EstimatorVariance, DoublyRobustBeatsIpsWithGoodModel) {
  util::Rng rng(32);
  const FullFeedbackDataset env = make_environment(3000, rng);
  const UniformRandomPolicy logging(3);
  const PolicyPtr candidate = make_candidate_policy(1);

  // Fit a model on a separate exploration sample.
  const ExplorationDataset train = env.simulate_exploration(logging, rng);
  auto model = std::make_shared<RidgeRewardModel>(
      fit_ridge(train, 1.0, /*importance_weighted=*/true));

  const IpsEstimator ips;
  const DoublyRobustEstimator dr(model);
  stats::Summary ips_vals, dr_vals;
  for (int r = 0; r < 40; ++r) {
    const ExplorationDataset exp = env.simulate_exploration(logging, rng);
    const auto small = exp.prefix(300);
    ips_vals.add(ips.evaluate(small, *candidate).value);
    dr_vals.add(dr.evaluate(small, *candidate).value);
  }
  EXPECT_LT(dr_vals.stddev(), ips_vals.stddev());
  // And DR stays near the truth (unbiasedness preserved).
  EXPECT_NEAR(dr_vals.mean(), env.true_value(*candidate), 0.03);
}

}  // namespace
}  // namespace harvest::core
