// Exact-value and behavioural tests of the off-policy estimators on
// hand-computed datasets.
#include <gtest/gtest.h>

#include <memory>

#include "core/estimators/direct.h"
#include "core/estimators/ips.h"
#include "core/policies/basic.h"

namespace harvest::core {
namespace {

/// Two-action dataset with known IPS values:
///  point 0: x=0, a=0, r=1.0, p=0.5
///  point 1: x=1, a=1, r=0.5, p=0.25
///  point 2: x=2, a=0, r=0.0, p=0.5
ExplorationDataset hand_dataset() {
  ExplorationDataset data(2, RewardRange{0, 1});
  data.add({FeatureVector{0.0}, 0, 1.0, 0.5});
  data.add({FeatureVector{1.0}, 1, 0.5, 0.25});
  data.add({FeatureVector{2.0}, 0, 0.0, 0.5});
  return data;
}

TEST(IpsTest, ExactValueForConstantPolicies) {
  const auto data = hand_dataset();
  const IpsEstimator ips;
  // pi = always 0: matches points 0 and 2 -> (1/0.5 + 0 + 0/0.5)/3 = 2/3.
  const ConstantPolicy pick0(2, 0);
  EXPECT_NEAR(ips.evaluate(data, pick0).value, 2.0 / 3.0, 1e-12);
  // pi = always 1: matches point 1 -> (0.5/0.25)/3 = 2/3.
  const ConstantPolicy pick1(2, 1);
  EXPECT_NEAR(ips.evaluate(data, pick1).value, 2.0 / 3.0, 1e-12);
}

TEST(IpsTest, RandomizedCandidateUsesProbabilityWeights) {
  const auto data = hand_dataset();
  const IpsEstimator ips;
  const UniformRandomPolicy uniform(2);
  // Each point weighted by 0.5/p: (0.5/0.5*1 + 0.5/0.25*0.5 + 0)/3 = 2/3.
  EXPECT_NEAR(ips.evaluate(data, uniform).value, 2.0 / 3.0, 1e-12);
}

TEST(IpsTest, MatchedCountsPointsWithPositiveProbability) {
  const auto data = hand_dataset();
  const IpsEstimator ips;
  const ConstantPolicy pick0(2, 0);
  const Estimate est = ips.evaluate(data, pick0);
  EXPECT_EQ(est.n, 3u);
  EXPECT_EQ(est.matched, 2u);
}

TEST(IpsTest, CiContainsValueAndShrinksWithN) {
  ExplorationDataset small(2, RewardRange{0, 1});
  ExplorationDataset large(2, RewardRange{0, 1});
  util::Rng rng(1);
  for (int i = 0; i < 4000; ++i) {
    const ActionId a = rng.bernoulli(0.5) ? 1 : 0;
    const double r = a == 0 ? 0.8 : 0.2;
    const ExplorationPoint pt{FeatureVector{0.0}, a, r, 0.5};
    if (i < 400) small.add(pt);
    large.add(pt);
  }
  const IpsEstimator ips;
  const ConstantPolicy pick0(2, 0);
  const auto est_small = ips.evaluate(small, pick0);
  const auto est_large = ips.evaluate(large, pick0);
  EXPECT_TRUE(est_small.normal_ci.contains(est_small.value));
  EXPECT_LT(est_large.normal_ci.width(), est_small.normal_ci.width());
  EXPECT_LT(est_large.bernstein_ci.width(), est_small.bernstein_ci.width());
  // Normal CI is asymptotic and narrower than the finite-sample Bernstein.
  EXPECT_LE(est_large.normal_ci.width(), est_large.bernstein_ci.width());
}

TEST(IpsTest, RejectsEmptyAndMismatched) {
  const ExplorationDataset empty(2, RewardRange{0, 1});
  const IpsEstimator ips;
  const ConstantPolicy pick0(2, 0);
  EXPECT_THROW(ips.evaluate(empty, pick0), std::invalid_argument);
  const auto data = hand_dataset();
  const ConstantPolicy wrong(3, 0);
  EXPECT_THROW(ips.evaluate(data, wrong), std::invalid_argument);
}

TEST(ClippedIpsTest, ClipsLargeWeights) {
  ExplorationDataset data(2, RewardRange{0, 1});
  data.add({FeatureVector{0.0}, 0, 1.0, 0.01});  // weight 100 unclipped
  const ConstantPolicy pick0(2, 0);
  const ClippedIpsEstimator clipped(10.0);
  EXPECT_NEAR(clipped.evaluate(data, pick0).value, 10.0, 1e-12);
  const IpsEstimator ips;
  EXPECT_NEAR(ips.evaluate(data, pick0).value, 100.0, 1e-12);
}

TEST(ClippedIpsTest, NoEffectWhenWeightsSmall) {
  const auto data = hand_dataset();
  const ConstantPolicy pick0(2, 0);
  const ClippedIpsEstimator clipped(100.0);
  const IpsEstimator ips;
  EXPECT_NEAR(clipped.evaluate(data, pick0).value,
              ips.evaluate(data, pick0).value, 1e-12);
}

TEST(SnipsTest, ExactValue) {
  const auto data = hand_dataset();
  const SnipsEstimator snips;
  const ConstantPolicy pick0(2, 0);
  // weights: 2, 0, 2 -> (2*1 + 2*0)/(2+2) = 0.5.
  EXPECT_NEAR(snips.evaluate(data, pick0).value, 0.5, 1e-12);
}

TEST(SnipsTest, BoundedByObservedRewards) {
  // SNIPS is a convex combination of observed rewards — never outside their
  // range, unlike IPS.
  ExplorationDataset data(2, RewardRange{0, 1});
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    data.add({FeatureVector{0.0}, rng.bernoulli(0.9) ? 0u : 1u,
              rng.uniform(0.3, 0.7), rng.bernoulli(0.5) ? 0.9 : 0.1});
  }
  const SnipsEstimator snips;
  const ConstantPolicy pick1(2, 1);
  const double v = snips.evaluate(data, pick1).value;
  EXPECT_GE(v, 0.3);
  EXPECT_LE(v, 0.7);
}

TEST(SnipsTest, NoOverlapGivesVacuousInterval) {
  ExplorationDataset data(2, RewardRange{0, 1});
  data.add({FeatureVector{0.0}, 0, 1.0, 0.5});
  const SnipsEstimator snips;
  const ConstantPolicy pick1(2, 1);  // never matches action 0
  const Estimate est = snips.evaluate(data, pick1);
  EXPECT_DOUBLE_EQ(est.normal_ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(est.normal_ci.hi, 1.0);
  EXPECT_EQ(est.matched, 0u);
}

/// A reward model that returns a fixed table of predictions.
class TableModel final : public RewardModel {
 public:
  explicit TableModel(std::vector<double> per_action)
      : per_action_(std::move(per_action)) {}
  double predict(const FeatureVector&, ActionId a) const override {
    return per_action_.at(a);
  }
  std::size_t num_actions() const override { return per_action_.size(); }
  std::string name() const override { return "table"; }

 private:
  std::vector<double> per_action_;
};

TEST(DirectMethodTest, PluginValue) {
  const auto data = hand_dataset();
  auto model = std::make_shared<TableModel>(std::vector<double>{0.7, 0.3});
  const DirectMethodEstimator dm(model);
  const ConstantPolicy pick0(2, 0);
  EXPECT_NEAR(dm.evaluate(data, pick0).value, 0.7, 1e-12);
  const UniformRandomPolicy uniform(2);
  EXPECT_NEAR(dm.evaluate(data, uniform).value, 0.5, 1e-12);
}

TEST(DoublyRobustTest, EqualsDmPlusCorrection) {
  const auto data = hand_dataset();
  auto model = std::make_shared<TableModel>(std::vector<double>{0.5, 0.5});
  const DoublyRobustEstimator dr(model);
  const ConstantPolicy pick0(2, 0);
  // DM = 0.5. Corrections: (1-0.5)/0.5 = 1 at pt0; 0 at pt1 (no match);
  // (0-0.5)/0.5 = -1 at pt2. Mean correction = 0 -> DR = 0.5.
  EXPECT_NEAR(dr.evaluate(data, pick0).value, 0.5, 1e-12);
}

TEST(DoublyRobustTest, PerfectModelGivesZeroVarianceCorrection) {
  // When the model is exactly right, DR's correction terms vanish and its
  // value equals DM's regardless of propensities.
  ExplorationDataset data(2, RewardRange{0, 1});
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const ActionId a = rng.bernoulli(0.2) ? 1 : 0;
    const double r = a == 0 ? 0.9 : 0.1;
    data.add({FeatureVector{0.0}, a, r, a == 0 ? 0.8 : 0.2});
  }
  auto perfect = std::make_shared<TableModel>(std::vector<double>{0.9, 0.1});
  const DoublyRobustEstimator dr(perfect);
  const DirectMethodEstimator dm(perfect);
  const ConstantPolicy pick1(2, 1);
  const Estimate dr_est = dr.evaluate(data, pick1);
  EXPECT_NEAR(dr_est.value, dm.evaluate(data, pick1).value, 1e-12);
  EXPECT_NEAR(dr_est.stderr_value, 0.0, 1e-12);
}

TEST(EstimatorNamesAreStable, Names) {
  EXPECT_EQ(IpsEstimator().name(), "ips");
  EXPECT_EQ(SnipsEstimator().name(), "snips");
  auto model = std::make_shared<TableModel>(std::vector<double>{0.0, 0.0});
  EXPECT_EQ(DirectMethodEstimator(model).name(), "direct-method");
  EXPECT_EQ(DoublyRobustEstimator(model).name(), "doubly-robust");
}

}  // namespace
}  // namespace harvest::core
