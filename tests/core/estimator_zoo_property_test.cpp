// Property tests of the estimator zoo's algebraic identities: the zoo's
// members are not independent formulas but points on a bias/variance dial,
// and the identities pin the dial's endpoints *bit-exactly* —
//   SWITCH(tau = 0)      == IPS   (every record on the importance side)
//   SWITCH(tau > 1)      == DM    (every record on the model side)
//   DR(zero model)       == IPS   (the correction term IS the IPS term)
//   SNIPS(rewards + c)   == SNIPS(rewards) + c  (shift equivariance)
// plus the repo-wide invariant that every estimate is bit-identical for any
// thread count.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/estimators/direct.h"
#include "core/estimators/ips.h"
#include "core/estimators/switch.h"
#include "core/policies/basic.h"
#include "core/reward_model.h"
#include "par/thread_pool.h"
#include "testing/fixtures.h"

namespace harvest::core {
namespace {

using harvest::testing::make_candidate_policy;
using harvest::testing::make_environment;
using harvest::testing::make_logging_policy;

using Combo = std::tuple<int, int>;  // (logging kind, candidate kind)

/// A reward model that predicts 0 everywhere: collapses DR to IPS.
struct ZeroModel final : RewardModel {
  double predict(const FeatureVector&, ActionId) const override { return 0; }
  std::size_t num_actions() const override { return 3; }
  std::string name() const override { return "zero"; }
};

/// Bit-exact comparison of two estimates. `check_bernstein` is off for
/// identities where only the Bernstein *range bound* differs by
/// construction (the point estimate, stderr, and normal CI still must
/// match exactly); `check_clipped` is off where the clipped/switched
/// fraction deliberately reports a different event.
void expect_identical(const Estimate& a, const Estimate& b,
                      bool check_bernstein = true, bool check_clipped = true) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.matched, b.matched);
  EXPECT_EQ(a.stderr_value, b.stderr_value);
  EXPECT_EQ(a.normal_ci.lo, b.normal_ci.lo);
  EXPECT_EQ(a.normal_ci.hi, b.normal_ci.hi);
  if (check_bernstein) {
    EXPECT_EQ(a.bernstein_ci.lo, b.bernstein_ci.lo);
    EXPECT_EQ(a.bernstein_ci.hi, b.bernstein_ci.hi);
  }
  EXPECT_EQ(a.ess, b.ess);
  EXPECT_EQ(a.max_weight, b.max_weight);
  if (check_clipped) EXPECT_EQ(a.clipped_fraction, b.clipped_fraction);
}

class ZooIdentities : public ::testing::TestWithParam<Combo> {};

TEST_P(ZooIdentities, SwitchTauZeroIsExactlyIps) {
  const auto [log_kind, cand_kind] = GetParam();
  util::Rng rng(5000 + log_kind * 10 + cand_kind);
  const FullFeedbackDataset env = make_environment(600, rng);
  const ExplorationDataset exp =
      env.simulate_exploration(*make_logging_policy(log_kind), rng);
  const PolicyPtr candidate = make_candidate_policy(cand_kind);

  const auto model = std::make_shared<ZeroModel>();
  const IpsEstimator ips;
  const SwitchEstimator sw(model, 0.0);
  // tau = 0: every propensity is >= 0, so every record takes the IPS
  // branch and the model is never consulted — all fields must match,
  // switched-fraction included (both are 0).
  expect_identical(sw.evaluate(exp, *candidate),
                   ips.evaluate(exp, *candidate));
}

TEST_P(ZooIdentities, SwitchTauAboveOneIsExactlyDirectMethod) {
  const auto [log_kind, cand_kind] = GetParam();
  util::Rng rng(6000 + log_kind * 10 + cand_kind);
  const FullFeedbackDataset env = make_environment(600, rng);
  ExplorationDataset exp =
      env.simulate_exploration(*make_logging_policy(log_kind), rng);
  const PolicyPtr candidate = make_candidate_policy(cand_kind);

  // A non-trivial model, so the identity is not about predicting zero.
  const auto model =
      std::make_shared<RidgeRewardModel>(fit_ridge(exp, 1.0, true));
  const DirectMethodEstimator dm(model);
  const SwitchEstimator sw(model, 1.5);
  // tau > 1: no propensity can reach it, so every record switches to the
  // model side. clipped_fraction is excluded: SWITCH truthfully reports
  // that 100% of records switched, while DM has nothing to report.
  const Estimate sw_est = sw.evaluate(exp, *candidate);
  expect_identical(sw_est, dm.evaluate(exp, *candidate),
                   /*check_bernstein=*/true, /*check_clipped=*/false);
  EXPECT_EQ(sw_est.clipped_fraction, 1.0);
}

TEST_P(ZooIdentities, DoublyRobustWithZeroModelIsIps) {
  const auto [log_kind, cand_kind] = GetParam();
  util::Rng rng(7000 + log_kind * 10 + cand_kind);
  const FullFeedbackDataset env = make_environment(600, rng);
  const ExplorationDataset exp =
      env.simulate_exploration(*make_logging_policy(log_kind), rng);
  const PolicyPtr candidate = make_candidate_policy(cand_kind);

  const IpsEstimator ips;
  const DoublyRobustEstimator dr(std::make_shared<ZeroModel>());
  // With rhat == 0 the DM term vanishes and the correction term w*(r - 0)
  // is exactly the IPS contribution, so the point estimate, stderr, normal
  // CI, and weight diagnostics coincide bit for bit. Only the Bernstein
  // *range bound* differs (DR bounds contributions by 2*max|c|, IPS by
  // width/min_p), so that CI is excluded.
  expect_identical(dr.evaluate(exp, *candidate), ips.evaluate(exp, *candidate),
                   /*check_bernstein=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ZooIdentities,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2)));

TEST(SnipsShiftEquivariance, UniformRewardShiftShiftsEstimateExactly) {
  // Two environments with identical contexts whose rewards differ by a
  // constant c. The same rng seed draws the same logged actions, so the
  // importance weights are identical and SNIPS — a weighted *average* —
  // must move by exactly c. (Plain IPS does not have this property unless
  // the weights average to 1; that is the point of self-normalizing.)
  for (const double c : {-0.4, 0.25, 3.0}) {
    util::Rng ctx_rng(8101);
    FullFeedbackDataset base(3, RewardRange{0, 1});
    FullFeedbackDataset shifted(3, RewardRange{c, 1 + c});
    for (int i = 0; i < 700; ++i) {
      const double x = ctx_rng.uniform();
      const std::vector<double> r{0.5 * x + 0.2, 0.9 - 0.6 * x, 0.5};
      base.add(FullFeedbackPoint{FeatureVector{x}, r});
      shifted.add(
          FullFeedbackPoint{FeatureVector{x}, {r[0] + c, r[1] + c, r[2] + c}});
    }
    const PolicyPtr logging = make_logging_policy(1);
    const PolicyPtr candidate = make_candidate_policy(1);
    util::Rng rng_a(8202), rng_b(8202);
    const ExplorationDataset exp_base =
        base.simulate_exploration(*logging, rng_a);
    const ExplorationDataset exp_shifted =
        shifted.simulate_exploration(*logging, rng_b);

    const SnipsEstimator snips;
    const Estimate e_base = snips.evaluate(exp_base, *candidate);
    const Estimate e_shifted = snips.evaluate(exp_shifted, *candidate);
    EXPECT_NEAR(e_shifted.value, e_base.value + c, 1e-12)
        << "shift c=" << c;
    // The weights are untouched by the shift, so the diagnostics are
    // bit-identical.
    EXPECT_EQ(e_base.ess, e_shifted.ess);
    EXPECT_EQ(e_base.max_weight, e_shifted.max_weight);
    EXPECT_EQ(e_base.matched, e_shifted.matched);
  }
}

TEST(ZooThreadInvariance, EveryEstimatorBitIdenticalAcrossThreadCounts) {
  // A heterogeneous-propensity log (eps-greedy logging), so SWITCH at
  // tau = 0.2 genuinely splits records across its two sides and every
  // estimator exercises its parallel reduction with non-trivial tallies.
  util::Rng rng(9100);
  const FullFeedbackDataset env = make_environment(4000, rng);
  const ExplorationDataset exp =
      env.simulate_exploration(*make_logging_policy(1), rng);
  const PolicyPtr candidate = make_candidate_policy(1);
  const auto model =
      std::make_shared<RidgeRewardModel>(fit_ridge(exp, 1.0, true));

  std::vector<EstimatorPtr> zoo;
  zoo.push_back(std::make_shared<IpsEstimator>());
  zoo.push_back(std::make_shared<ClippedIpsEstimator>(2.0));
  zoo.push_back(std::make_shared<SnipsEstimator>());
  zoo.push_back(std::make_shared<DirectMethodEstimator>(model));
  zoo.push_back(std::make_shared<DoublyRobustEstimator>(model));
  zoo.push_back(std::make_shared<SwitchEstimator>(model, 0.2));

  par::set_default_threads(1);
  std::vector<Estimate> baseline;
  for (const auto& est : zoo) {
    baseline.push_back(est->evaluate(exp, *candidate));
  }
  // Sanity: SWITCH actually switched some (but not all) records.
  EXPECT_GT(baseline.back().clipped_fraction, 0.0);
  EXPECT_LT(baseline.back().clipped_fraction, 1.0);

  for (const std::size_t threads : {2u, 8u}) {
    par::set_default_threads(threads);
    for (std::size_t e = 0; e < zoo.size(); ++e) {
      SCOPED_TRACE(zoo[e]->name() + " at threads=" + std::to_string(threads));
      expect_identical(baseline[e], zoo[e]->evaluate(exp, *candidate));
    }
  }
  par::set_default_threads(1);
}

}  // namespace
}  // namespace harvest::core
