#include "core/linalg.h"

#include <gtest/gtest.h>

namespace harvest::core {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id.at(0, 1), 0.0);
  EXPECT_EQ(id.rows(), 3u);
  EXPECT_EQ(id.cols(), 3u);
  EXPECT_THROW(id.at(3, 0), std::out_of_range);
}

TEST(MatrixTest, AddOuterAccumulates) {
  Matrix m(2, 2);
  const std::vector<double> v{1.0, 2.0};
  m.add_outer(v, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 8.0);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0].
  Matrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  const std::vector<double> b{2, 1};
  const auto x = cholesky_solve(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
}

TEST(CholeskyTest, IdentitySolveReturnsB) {
  const auto x = cholesky_solve(Matrix::identity(4), std::vector<double>{1, 2, 3, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(x[i], static_cast<double>(i + 1));
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 1;  // eigenvalues 3, -1: not SPD
  EXPECT_THROW(cholesky_solve(a, std::vector<double>{1, 1}),
               std::domain_error);
}

TEST(CholeskyTest, RejectsDimensionMismatch) {
  EXPECT_THROW(cholesky_solve(Matrix(2, 3), std::vector<double>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW(cholesky_solve(Matrix::identity(2), std::vector<double>{1}),
               std::invalid_argument);
}

TEST(DotTest, BasicAndMismatch) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const std::vector<double> short_v{1};
  EXPECT_THROW(dot(a, short_v), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
