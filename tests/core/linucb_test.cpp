#include "core/train/linucb.h"

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/policies/basic.h"
#include "util/rng.h"

namespace harvest::core {
namespace {

TEST(LinUcbTest, BonusShrinksWithObservations) {
  LinUcbTrainer trainer(2, 1, {1.0, 1.0});
  const FeatureVector x{0.5};
  const double before = trainer.bonus(x, 0);
  for (int i = 0; i < 50; ++i) trainer.learn(x, 0, 0.5);
  const double after = trainer.bonus(x, 0);
  EXPECT_LT(after, before / 3);
  // Arm 1 untouched: bonus unchanged.
  EXPECT_DOUBLE_EQ(trainer.bonus(x, 1), before);
}

TEST(LinUcbTest, OptimismPicksUnexploredArm) {
  LinUcbTrainer trainer(2, 1, {1.0, 1.0});
  const FeatureVector x{0.5};
  // Feed arm 0 a decent reward many times; arm 1 never tried -> its bonus
  // should dominate eventually... with alpha=1 and reward 0.5, the
  // untried arm's UCB (0 + ~0.9) beats arm 0's (0.5 + small).
  for (int i = 0; i < 100; ++i) trainer.learn(x, 0, 0.5);
  EXPECT_EQ(trainer.step(x), 1u);
}

TEST(LinUcbTest, LearnsLinearRewardsAndConverges) {
  util::Rng rng(1);
  LinUcbTrainer trainer(2, 1, {0.5, 1.0});
  // Environment: r(x, 0) = x, r(x, 1) = 1 - x.
  for (int i = 0; i < 4000; ++i) {
    const FeatureVector x{rng.uniform()};
    const ActionId a = trainer.step(x);
    const double r = (a == 0 ? x[0] : 1.0 - x[0]) + rng.normal(0, 0.05);
    trainer.learn(x, a, r);
  }
  EXPECT_NEAR(trainer.predict(FeatureVector{0.8}, 0), 0.8, 0.05);
  EXPECT_NEAR(trainer.predict(FeatureVector{0.8}, 1), 0.2, 0.05);
  // Greedy snapshot implements the crossover rule.
  const PolicyPtr policy = trainer.snapshot();
  util::Rng tmp(0);
  EXPECT_EQ(policy->act(FeatureVector{0.9}, tmp), 0u);
  EXPECT_EQ(policy->act(FeatureVector{0.1}, tmp), 1u);
}

TEST(LinUcbTest, BeatsUniformOnline) {
  util::Rng rng(2);
  LinUcbTrainer trainer(3, 1, {0.5, 1.0});
  double linucb_total = 0, uniform_total = 0;
  const int steps = 5000;
  for (int i = 0; i < steps; ++i) {
    const FeatureVector x{rng.uniform()};
    auto reward_of = [&](ActionId a) {
      switch (a) {
        case 0: return 0.2 + 0.6 * x[0];
        case 1: return 0.8 - 0.6 * x[0];
        default: return 0.45;
      }
    };
    const ActionId a = trainer.step(x);
    const double r = reward_of(a) + rng.normal(0, 0.05);
    trainer.learn(x, a, r);
    linucb_total += reward_of(a);
    uniform_total += reward_of(static_cast<ActionId>(rng.uniform_index(3)));
  }
  EXPECT_GT(linucb_total / steps, uniform_total / steps + 0.05);
}

TEST(LinUcbTest, Validation) {
  EXPECT_THROW(LinUcbTrainer(0, 1, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(LinUcbTrainer(2, 1, {-0.1, 1.0}), std::invalid_argument);
  EXPECT_THROW(LinUcbTrainer(2, 1, {1.0, 0.0}), std::invalid_argument);
  LinUcbTrainer trainer(2, 1, {1.0, 1.0});
  EXPECT_THROW(trainer.learn(FeatureVector{0.0}, 5, 0.1), std::out_of_range);
  EXPECT_THROW(trainer.learn(FeatureVector{0.0, 1.0}, 0, 0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
