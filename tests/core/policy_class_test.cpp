#include "core/policy_class.h"

#include <gtest/gtest.h>

#include "core/estimators/ips.h"
#include "core/policies/basic.h"
#include "core/policies/greedy.h"

namespace harvest::core {
namespace {

TEST(StumpPolicyClassTest, SizeAndEnumeration) {
  const StumpPolicyClass pi(2, 3, 0.0, 1.0, 5);
  EXPECT_EQ(pi.size(), 3u * 5u * 4u);
  // Every index materializes and all indices are distinct parameterizations.
  std::set<std::string> names;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const PolicyPtr p = pi.make(i);
    ASSERT_NE(p, nullptr);
    names.insert(p->name());
  }
  EXPECT_EQ(names.size(), pi.size());
  EXPECT_THROW(pi.make(pi.size()), std::out_of_range);
}

TEST(StumpPolicyClassTest, ContainsConstantPolicies) {
  // Stumps with below == above are constants; the class must contain the
  // all-0 and all-1 policies.
  const StumpPolicyClass pi(2, 1, 0.0, 1.0, 3);
  bool found_const0 = false, found_const1 = false;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const PolicyPtr p = pi.make(i);
    const auto* stump = dynamic_cast<const ThresholdPolicy*>(p.get());
    ASSERT_NE(stump, nullptr);
    util::Rng rng(0);
    const ActionId lo = p->act(FeatureVector{-100.0}, rng);
    const ActionId hi = p->act(FeatureVector{100.0}, rng);
    if (lo == 0 && hi == 0) found_const0 = true;
    if (lo == 1 && hi == 1) found_const1 = true;
  }
  EXPECT_TRUE(found_const0);
  EXPECT_TRUE(found_const1);
}

TEST(SearchPolicyClassTest, FindsPlantedOptimum) {
  // Environment: action 1 is better iff x >= 0.6. The best stump in a grid
  // containing 0.6 should be found by IPS search on exploration data.
  util::Rng rng(7);
  FullFeedbackDataset env(2, RewardRange{0, 1});
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    env.add(FullFeedbackPoint{FeatureVector{x},
                              {x >= 0.6 ? 0.2 : 0.8, x >= 0.6 ? 0.8 : 0.2}});
  }
  const UniformRandomPolicy logging(2);
  const ExplorationDataset exp = env.simulate_exploration(logging, rng);

  const StumpPolicyClass pi(2, 1, 0.0, 1.0, 6);  // grid includes 0.6
  const IpsEstimator ips;
  const ClassSearchResult result = search_policy_class(pi, exp, ips);
  ASSERT_NE(result.best_policy, nullptr);

  const auto* stump =
      dynamic_cast<const ThresholdPolicy*>(result.best_policy.get());
  ASSERT_NE(stump, nullptr);
  EXPECT_NEAR(stump->threshold(), 0.6, 1e-9);
  // Below threshold choose 0, above choose 1.
  EXPECT_EQ(stump->choose(FeatureVector{0.1}), 0u);
  EXPECT_EQ(stump->choose(FeatureVector{0.9}), 1u);
  // The search's estimate should be near the planted optimum's value (0.8).
  EXPECT_NEAR(result.best_estimate.value, 0.8, 0.05);
  EXPECT_LT(result.worst_value, result.best_estimate.value);
}

TEST(StumpPolicyClassTest, Validation) {
  EXPECT_THROW(StumpPolicyClass(0, 1, 0, 1, 2), std::invalid_argument);
  EXPECT_THROW(StumpPolicyClass(2, 0, 0, 1, 2), std::invalid_argument);
  EXPECT_THROW(StumpPolicyClass(2, 1, 1, 1, 2), std::invalid_argument);
  EXPECT_THROW(StumpPolicyClass(2, 1, 0, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
