#include "core/policies/basic.h"
#include "core/policies/greedy.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

namespace harvest::core {
namespace {

double dist_sum(const std::vector<double>& d) {
  return std::accumulate(d.begin(), d.end(), 0.0);
}

TEST(ConstantPolicyTest, AlwaysSameAction) {
  const ConstantPolicy policy(4, 2);
  util::Rng rng(1);
  const FeatureVector x{1.0, 2.0};
  EXPECT_EQ(policy.act(x, rng), 2u);
  EXPECT_EQ(policy.choose(x), 2u);
  const auto d = policy.distribution(x);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(dist_sum(d), 1.0);
  EXPECT_DOUBLE_EQ(policy.probability(x, 2), 1.0);
  EXPECT_DOUBLE_EQ(policy.probability(x, 0), 0.0);
  EXPECT_THROW(ConstantPolicy(4, 4), std::invalid_argument);
}

TEST(UniformRandomPolicyTest, UniformDistribution) {
  const UniformRandomPolicy policy(5);
  const FeatureVector x{0.0};
  const auto d = policy.distribution(x);
  for (double p : d) EXPECT_DOUBLE_EQ(p, 0.2);
  util::Rng rng(2);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[policy.act(x, rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(EpsilonGreedyPolicyTest, MixesBaseWithUniform) {
  auto base = std::make_shared<ConstantPolicy>(4, 1);
  const EpsilonGreedyPolicy policy(base, 0.2);
  const FeatureVector x{0.0};
  const auto d = policy.distribution(x);
  EXPECT_DOUBLE_EQ(dist_sum(d), 1.0);
  EXPECT_NEAR(d[1], 0.8 + 0.05, 1e-12);
  EXPECT_NEAR(d[0], 0.05, 1e-12);
  // Every action has the epsilon/|A| floor — the Eq. 1 guarantee.
  for (double p : d) EXPECT_GE(p, 0.05 - 1e-12);
}

TEST(EpsilonGreedyPolicyTest, EpsilonOneIsUniform) {
  auto base = std::make_shared<ConstantPolicy>(3, 0);
  const EpsilonGreedyPolicy policy(base, 1.0);
  const auto d = policy.distribution(FeatureVector{0.0});
  for (double p : d) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(EpsilonGreedyPolicyTest, Validation) {
  EXPECT_THROW(EpsilonGreedyPolicy(nullptr, 0.1), std::invalid_argument);
  auto base = std::make_shared<ConstantPolicy>(2, 0);
  EXPECT_THROW(EpsilonGreedyPolicy(base, 1.5), std::invalid_argument);
}

TEST(SoftmaxPolicyTest, HigherScoreMoreProbable) {
  const SoftmaxPolicy policy(
      3, [](const FeatureVector&, ActionId a) { return static_cast<double>(a); },
      1.0);
  const auto d = policy.distribution(FeatureVector{0.0});
  EXPECT_DOUBLE_EQ(dist_sum(d), 1.0);
  EXPECT_LT(d[0], d[1]);
  EXPECT_LT(d[1], d[2]);
}

TEST(SoftmaxPolicyTest, LowTemperatureApproachesGreedy) {
  const SoftmaxPolicy policy(
      2, [](const FeatureVector&, ActionId a) { return a == 1 ? 1.0 : 0.0; },
      0.01);
  const auto d = policy.distribution(FeatureVector{0.0});
  EXPECT_GT(d[1], 0.999);
}

TEST(MixturePolicyTest, WeightsCombineComponents) {
  auto a = std::make_shared<ConstantPolicy>(2, 0);
  auto b = std::make_shared<ConstantPolicy>(2, 1);
  const MixturePolicy mix({a, b}, {3.0, 1.0});
  const auto d = mix.distribution(FeatureVector{0.0});
  EXPECT_NEAR(d[0], 0.75, 1e-12);
  EXPECT_NEAR(d[1], 0.25, 1e-12);
}

TEST(MixturePolicyTest, Validation) {
  auto a = std::make_shared<ConstantPolicy>(2, 0);
  EXPECT_THROW(MixturePolicy({}, {}), std::invalid_argument);
  EXPECT_THROW(MixturePolicy({a}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(MixturePolicy({a}, {0.0}), std::invalid_argument);
}

TEST(FunctionPolicyTest, DelegatesToChooser) {
  const FunctionPolicy policy(
      2, [](const FeatureVector& x) { return x[0] > 0 ? 1u : 0u; }, "test");
  EXPECT_EQ(policy.choose(FeatureVector{1.0}), 1u);
  EXPECT_EQ(policy.choose(FeatureVector{-1.0}), 0u);
  EXPECT_EQ(policy.name(), "test");
}

TEST(FunctionPolicyTest, BadChooserActionThrows) {
  const FunctionPolicy policy(
      2, [](const FeatureVector&) { return 7u; }, "bad");
  EXPECT_THROW(policy.choose(FeatureVector{0.0}), std::logic_error);
}

TEST(ThresholdPolicyTest, SplitsOnFeature) {
  const ThresholdPolicy policy(3, 1, 0.5, 0, 2);
  EXPECT_EQ(policy.choose(FeatureVector{9.0, 0.4}), 0u);
  EXPECT_EQ(policy.choose(FeatureVector{9.0, 0.6}), 2u);
  EXPECT_EQ(policy.choose(FeatureVector{9.0, 0.5}), 2u);  // >= threshold
  EXPECT_THROW(policy.choose(FeatureVector{1.0}), std::out_of_range);
}

TEST(LinearPolicyTest, ArgmaxOfLinearScores) {
  // Two actions over 1 feature (+bias): action 0 scores x, action 1 scores
  // 1 - x. Crossover at 0.5.
  const LinearPolicy policy({{0.0, 1.0}, {1.0, -1.0}});
  EXPECT_EQ(policy.choose(FeatureVector{0.9}), 0u);
  EXPECT_EQ(policy.choose(FeatureVector{0.1}), 1u);
}

TEST(LinearPolicyTest, Validation) {
  EXPECT_THROW(LinearPolicy({}), std::invalid_argument);
  EXPECT_THROW(LinearPolicy({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(PolicyTest, ActSamplesFromDistribution) {
  auto base = std::make_shared<ConstantPolicy>(2, 1);
  const EpsilonGreedyPolicy policy(base, 0.5);
  util::Rng rng(3);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ones += policy.act(FeatureVector{0.0}, rng) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(ones / static_cast<double>(n), 0.75, 0.01);
}

}  // namespace
}  // namespace harvest::core
