#include "core/propensity.h"

#include <gtest/gtest.h>

#include "core/estimators/ips.h"
#include "core/policies/basic.h"

namespace harvest::core {
namespace {

TEST(KnownPropensityTest, ReturnsDeclaredDistribution) {
  const KnownPropensity known({0.25, 0.75});
  EXPECT_DOUBLE_EQ(known.propensity(FeatureVector{0.0}, 0), 0.25);
  EXPECT_DOUBLE_EQ(known.propensity(FeatureVector{0.0}, 1), 0.75);
  EXPECT_THROW(known.propensity(FeatureVector{0.0}, 2), std::out_of_range);
}

TEST(KnownPropensityTest, Validation) {
  EXPECT_THROW(KnownPropensity({}), std::invalid_argument);
  EXPECT_THROW(KnownPropensity({0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW(KnownPropensity({1.5, -0.5}), std::invalid_argument);
}

TEST(EmpiricalPropensityTest, RecoversGlobalMarginal) {
  // Context-free logging policy choosing action 0 with prob 0.7.
  util::Rng rng(1);
  EmpiricalPropensityModel model(2, {});
  for (int i = 0; i < 20000; ++i) {
    model.observe(FeatureVector{rng.uniform()}, rng.bernoulli(0.7) ? 0 : 1);
  }
  EXPECT_NEAR(model.propensity(FeatureVector{0.5}, 0), 0.7, 0.02);
  EXPECT_NEAR(model.propensity(FeatureVector{0.5}, 1), 0.3, 0.02);
}

TEST(EmpiricalPropensityTest, BucketedRecoversContextDependence) {
  // Logging policy depends on feature 0's sign bucket: p(a=0) is 0.9 for
  // x < 0 and 0.2 for x >= 0. Bucket on feature 0.
  util::Rng rng(2);
  EmpiricalPropensityModel model(2, {0}, 256);
  for (int i = 0; i < 40000; ++i) {
    const double x = rng.bernoulli(0.5) ? -1.0 : 1.0;
    const double p0 = x < 0 ? 0.9 : 0.2;
    model.observe(FeatureVector{x}, rng.bernoulli(p0) ? 0 : 1);
  }
  EXPECT_NEAR(model.propensity(FeatureVector{-1.0}, 0), 0.9, 0.03);
  EXPECT_NEAR(model.propensity(FeatureVector{1.0}, 0), 0.2, 0.03);
}

TEST(EmpiricalPropensityTest, SmoothingKeepsPropensitiesPositive) {
  EmpiricalPropensityModel model(3, {});
  model.observe(FeatureVector{0.0}, 0);
  // Actions 1 and 2 never observed but must get positive propensity
  // (otherwise IPS is undefined).
  EXPECT_GT(model.propensity(FeatureVector{0.0}, 1), 0.0);
  EXPECT_GT(model.propensity(FeatureVector{0.0}, 2), 0.0);
  EXPECT_THROW(EmpiricalPropensityModel(2, {}, 16, 0.0),
               std::invalid_argument);
}

TEST(EmpiricalPropensityTest, FitFromDataset) {
  util::Rng rng(3);
  ExplorationDataset data(2, RewardRange{0, 1});
  for (int i = 0; i < 10000; ++i) {
    const ActionId a = rng.bernoulli(0.25) ? 0 : 1;
    data.add({FeatureVector{0.0}, a, 0.5, 1.0 /* placeholder */});
  }
  EmpiricalPropensityModel model(2, {});
  model.fit(data);
  EXPECT_NEAR(model.propensity(FeatureVector{0.0}, 0), 0.25, 0.02);
}

TEST(AnnotatePropensitiesTest, RewritesOnlyPropensity) {
  ExplorationDataset data(2, RewardRange{0, 1});
  data.add({FeatureVector{1.0}, 0, 0.8, 1.0});
  data.add({FeatureVector{2.0}, 1, 0.2, 1.0});
  const KnownPropensity known({0.4, 0.6});
  const ExplorationDataset annotated = annotate_propensities(data, known);
  ASSERT_EQ(annotated.size(), 2u);
  EXPECT_DOUBLE_EQ(annotated[0].propensity, 0.4);
  EXPECT_DOUBLE_EQ(annotated[1].propensity, 0.6);
  EXPECT_DOUBLE_EQ(annotated[0].reward, 0.8);
  EXPECT_EQ(annotated[1].action, 1u);
  EXPECT_DOUBLE_EQ(annotated[1].context[0], 2.0);
}

TEST(EmpiricalPropensityTest, RejectsZeroBucketsWithBucketFeatures) {
  // num_buckets == 0 with hashed features would make bucket_of() compute
  // h % 0 — undefined behaviour. Must throw instead.
  EXPECT_THROW(EmpiricalPropensityModel(2, {0}, 0), std::invalid_argument);
  // The degenerate context-free model never hashes, so zero buckets with no
  // bucket features stays legal.
  EXPECT_NO_THROW(EmpiricalPropensityModel(2, {}, 0));
}

TEST(EmpiricalPropensityTest, RefitDoesNotDoubleCount) {
  // fit() must reset accumulated counts: fitting twice on the same data, or
  // fitting on a second dataset, estimates that dataset alone.
  ExplorationDataset skewed(2, RewardRange{0, 1});
  for (int i = 0; i < 90; ++i) skewed.add({FeatureVector{0.0}, 0, 0.5, 1.0});
  for (int i = 0; i < 10; ++i) skewed.add({FeatureVector{0.0}, 1, 0.5, 1.0});
  ExplorationDataset balanced(2, RewardRange{0, 1});
  for (int i = 0; i < 50; ++i) {
    balanced.add({FeatureVector{0.0}, 0, 0.5, 1.0});
    balanced.add({FeatureVector{0.0}, 1, 0.5, 1.0});
  }

  EmpiricalPropensityModel model(2, {});
  model.fit(skewed);
  const double p0_once = model.propensity(FeatureVector{0.0}, 0);
  model.fit(skewed);  // refit on identical data: estimate must not move
  EXPECT_DOUBLE_EQ(model.propensity(FeatureVector{0.0}, 0), p0_once);

  model.fit(balanced);  // refit on balanced data: old skew must be gone
  EXPECT_NEAR(model.propensity(FeatureVector{0.0}, 0), 0.5, 0.02);
  EXPECT_NEAR(model.propensity(FeatureVector{0.0}, 1), 0.5, 0.02);
}

TEST(AnnotatePropensitiesTest, EndToEndIpsWithInferredPropensities) {
  // Inferring propensities from a context-free logging policy and running
  // IPS should match IPS with the true propensities.
  util::Rng rng(4);
  FullFeedbackDataset env(2, RewardRange{0, 1});
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform();
    env.add(FullFeedbackPoint{FeatureVector{x}, {x, 1 - x}});
  }
  auto logging = std::make_shared<KnownPropensity>(
      std::vector<double>{0.3, 0.7});
  // Simulate logging without recording p (placeholder 1.0), then infer.
  ExplorationDataset raw(2, RewardRange{0, 1});
  for (const auto& pt : env.points()) {
    const ActionId a = rng.bernoulli(0.3) ? 0 : 1;
    raw.add({pt.context, a, pt.rewards[a], 1.0});
  }
  EmpiricalPropensityModel inferred(2, {});
  inferred.fit(raw);
  const ExplorationDataset annotated = annotate_propensities(raw, inferred);

  const IpsEstimator ips;
  const ConstantPolicy pick0(2, 0);
  const double truth = env.true_value(pick0);
  EXPECT_NEAR(ips.evaluate(annotated, pick0).value, truth, 0.05);
}

}  // namespace
}  // namespace harvest::core
