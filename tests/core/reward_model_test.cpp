#include "core/reward_model.h"

#include <gtest/gtest.h>

#include "core/policies/basic.h"

namespace harvest::core {
namespace {

TEST(RidgeRewardModelTest, RecoversLinearFunction) {
  // reward(x, a) = 2x + (a == 1 ? 0.5 : 0).
  RidgeRewardModel model(2, 1, 1e-6);
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform();
    model.observe(FeatureVector{x}, 0, 2 * x);
    model.observe(FeatureVector{x}, 1, 2 * x + 0.5);
  }
  model.fit();
  EXPECT_NEAR(model.predict(FeatureVector{0.3}, 0), 0.6, 0.01);
  EXPECT_NEAR(model.predict(FeatureVector{0.3}, 1), 1.1, 0.01);
  // Coefficients: bias ~0 / 0.5, slope ~2.
  EXPECT_NEAR(model.weights(0)[1], 2.0, 0.02);
  EXPECT_NEAR(model.weights(1)[0], 0.5, 0.02);
}

TEST(RidgeRewardModelTest, RegularizationShrinksTowardZero) {
  RidgeRewardModel tight(1, 1, 1e4);
  for (int i = 0; i < 50; ++i) {
    tight.observe(FeatureVector{1.0}, 0, 10.0);
  }
  tight.fit();
  // Huge lambda -> predictions pulled far below the sample mean.
  EXPECT_LT(tight.predict(FeatureVector{1.0}, 0), 1.0);
}

TEST(RidgeRewardModelTest, ImportanceWeightingCorrectsSkew) {
  // Logging policy shows action 0 mostly when x > 0.5; plain (unweighted)
  // regression on logged data is biased on the skewed region unless
  // importance-weighted. Construct the pathological dataset directly.
  util::Rng rng(2);
  ExplorationDataset data(2, RewardRange{0, 1});
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform();
    // Logging: action 0 w.p. 0.9 if x > 0.5 else 0.1.
    const double p0 = x > 0.5 ? 0.9 : 0.1;
    const ActionId a = rng.bernoulli(p0) ? 0 : 1;
    const double r = a == 0 ? x : 1.0 - x;  // true reward
    data.add({FeatureVector{x}, a, r, a == 0 ? p0 : 1 - p0});
  }
  const RidgeRewardModel weighted = fit_ridge(data, 1e-3, true);
  // True function for action 0 is r = x; check at x = 0.25 (rarely logged
  // with action 0).
  EXPECT_NEAR(weighted.predict(FeatureVector{0.25}, 0), 0.25, 0.05);
  EXPECT_NEAR(weighted.predict(FeatureVector{0.25}, 1), 0.75, 0.05);
}

TEST(RidgeRewardModelTest, PredictBeforeFitThrows) {
  RidgeRewardModel model(1, 1, 1.0);
  model.observe(FeatureVector{1.0}, 0, 1.0);
  EXPECT_THROW(model.predict(FeatureVector{1.0}, 0), std::logic_error);
  model.fit();
  EXPECT_NO_THROW(model.predict(FeatureVector{1.0}, 0));
}

TEST(RidgeRewardModelTest, Validation) {
  EXPECT_THROW(RidgeRewardModel(0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(RidgeRewardModel(1, 1, 0.0), std::invalid_argument);
  RidgeRewardModel model(2, 2, 1.0);
  EXPECT_THROW(model.observe(FeatureVector{1.0, 2.0}, 5, 0.0),
               std::out_of_range);
  EXPECT_THROW(model.observe(FeatureVector{1.0}, 0, 0.0),
               std::invalid_argument);
}

TEST(RidgeRewardModelTest, ObservationWeightTracked) {
  RidgeRewardModel model(2, 1, 1.0);
  model.observe(FeatureVector{0.0}, 0, 1.0, 2.5);
  model.observe(FeatureVector{0.0}, 0, 1.0, 1.5);
  EXPECT_DOUBLE_EQ(model.observation_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(model.observation_weight(1), 0.0);
}

TEST(SgdRewardModelTest, ConvergesOnLinearTarget) {
  SgdRewardModel model(1, 1, 0.3);
  util::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    model.update(FeatureVector{x}, 0, 3 * x + 1);
  }
  EXPECT_NEAR(model.predict(FeatureVector{0.5}, 0), 2.5, 0.1);
  EXPECT_NEAR(model.predict(FeatureVector{0.0}, 0), 1.0, 0.15);
}

TEST(SgdRewardModelTest, PerActionIndependence) {
  SgdRewardModel model(2, 1, 0.3);
  util::Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    model.update(FeatureVector{rng.uniform()}, 0, 1.0);
  }
  // Action 1 never updated: predicts 0.
  EXPECT_DOUBLE_EQ(model.predict(FeatureVector{0.5}, 1), 0.0);
  EXPECT_NEAR(model.predict(FeatureVector{0.5}, 0), 1.0, 0.1);
}

TEST(FitRidgeFullTest, MatchesPerActionSupervisedFit) {
  util::Rng rng(5);
  FullFeedbackDataset data(2, RewardRange{0, 1});
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    data.add(FullFeedbackPoint{FeatureVector{x}, {x, 1 - x}});
  }
  const RidgeRewardModel model = fit_ridge_full(data, 1e-6);
  EXPECT_NEAR(model.predict(FeatureVector{0.8}, 0), 0.8, 0.02);
  EXPECT_NEAR(model.predict(FeatureVector{0.8}, 1), 0.2, 0.02);
}

}  // namespace
}  // namespace harvest::core
