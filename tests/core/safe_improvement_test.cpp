#include "core/safe_improvement.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/estimators/ips.h"
#include "core/policies/basic.h"

namespace harvest::core {
namespace {

/// Environment: action 1 is clearly better (0.8 vs 0.3). Uniform logging.
ExplorationDataset make_data(std::size_t n, util::Rng& rng) {
  ExplorationDataset data(2, {0.0, 1.0});
  for (std::size_t i = 0; i < n; ++i) {
    const ActionId a = rng.bernoulli(0.5) ? 1 : 0;
    const double r = (a == 1 ? 0.8 : 0.3) + rng.normal(0, 0.05);
    data.add({FeatureVector{rng.uniform()}, a,
              std::clamp(r, 0.0, 1.0), 0.5});
  }
  return data;
}

TEST(SafeImprovementTest, ClearWinnerIsDeployable) {
  util::Rng rng(1);
  const ExplorationDataset data = make_data(5000, rng);
  const IpsEstimator ips;
  const ConstantPolicy good(2, 1);
  // Baseline: the logged (uniform) policy's realized value ~0.55.
  const SafetyVerdict verdict = safe_improvement(data, good, ips, 0.55);
  EXPECT_TRUE(verdict.deployable);
  EXPECT_GT(verdict.margin, 0.1);
  EXPECT_NEAR(verdict.estimate.value, 0.8, 0.05);
}

TEST(SafeImprovementTest, WorsePolicyIsRejected) {
  util::Rng rng(2);
  const ExplorationDataset data = make_data(5000, rng);
  const IpsEstimator ips;
  const ConstantPolicy bad(2, 0);
  const SafetyVerdict verdict = safe_improvement(data, bad, ips, 0.55);
  EXPECT_FALSE(verdict.deployable);
  EXPECT_LT(verdict.margin, 0.0);
}

TEST(SafeImprovementTest, EquivalentPolicyRejectedOnSmallSamples) {
  // A policy matching the baseline cannot clear the gate: its lower bound
  // sits below its (equal) point value — the gate is conservative by
  // construction.
  util::Rng rng(3);
  const ExplorationDataset data = make_data(300, rng);
  const IpsEstimator ips;
  const UniformRandomPolicy same(2);
  const SafetyVerdict verdict = safe_improvement(data, same, ips, 0.55);
  EXPECT_FALSE(verdict.deployable);
}

TEST(SafeImprovementTest, FiniteSampleGateIsStricter) {
  util::Rng rng(4);
  const ExplorationDataset data = make_data(800, rng);
  const IpsEstimator ips;
  const ConstantPolicy good(2, 1);
  SafetyConfig normal_cfg;
  SafetyConfig bernstein_cfg;
  bernstein_cfg.finite_sample = true;
  const SafetyVerdict loose = safe_improvement(data, good, ips, 0.55,
                                               normal_cfg);
  const SafetyVerdict strict = safe_improvement(data, good, ips, 0.55,
                                                bernstein_cfg);
  EXPECT_LT(strict.margin, loose.margin);
}

TEST(SafeImprovementTest, RequiredImprovementRaisesTheBar) {
  util::Rng rng(5);
  const ExplorationDataset data = make_data(5000, rng);
  const IpsEstimator ips;
  const ConstantPolicy good(2, 1);
  SafetyConfig demanding;
  demanding.required_improvement = 0.5;  // unreachable
  EXPECT_FALSE(
      safe_improvement(data, good, ips, 0.55, demanding).deployable);
}

TEST(SafeImprovementTest, SweepUsesLoggedBaselineAndOrders) {
  util::Rng rng(6);
  const ExplorationDataset data = make_data(5000, rng);
  const IpsEstimator ips;
  const std::vector<PolicyPtr> candidates{
      std::make_shared<ConstantPolicy>(2, 0),
      std::make_shared<ConstantPolicy>(2, 1)};
  const auto verdicts = safe_improvement_sweep(data, candidates, ips);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_FALSE(verdicts[0].deployable);
  EXPECT_TRUE(verdicts[1].deployable);
  EXPECT_NEAR(verdicts[0].baseline_value, 0.55, 0.02);
}

TEST(SafeImprovementTest, Validation) {
  util::Rng rng(7);
  const ExplorationDataset data = make_data(100, rng);
  const IpsEstimator ips;
  const ConstantPolicy policy(2, 0);
  SafetyConfig bad;
  bad.delta = 0.0;
  EXPECT_THROW(safe_improvement(data, policy, ips, 0.5, bad),
               std::invalid_argument);
  bad = SafetyConfig{};
  bad.required_improvement = -1;
  EXPECT_THROW(safe_improvement(data, policy, ips, 0.5, bad),
               std::invalid_argument);
  const ExplorationDataset empty(2, {0.0, 1.0});
  EXPECT_THROW(safe_improvement_sweep(empty, {}, ips),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
