// Parameterized property sweep for the sequence estimators: unbiasedness of
// trajectory and per-decision IS must hold across horizons, logging skews,
// and candidate policies on a context-feedback chain environment.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/estimators/sequence.h"
#include "core/policies/basic.h"
#include "stats/summary.h"
#include "testing/fixtures.h"

namespace harvest::core {
namespace {

using harvest::testing::simulate_chain;
using harvest::testing::truth_always1;

using Case = std::tuple<std::size_t, double>;  // (horizon, logging p1)

class SequenceUnbiasedness : public ::testing::TestWithParam<Case> {};

TEST_P(SequenceUnbiasedness, TrajectoryAndPdisCentredOnTruth) {
  const auto [horizon, p1] = GetParam();
  util::Rng rng(9000 + horizon * 10 +
                static_cast<std::size_t>(p1 * 100));
  const ConstantPolicy always1(2, 1);
  const TrajectoryIpsEstimator traj;
  const PerDecisionIpsEstimator pdis;
  const double truth = truth_always1(horizon);

  stats::Summary traj_vals, pdis_vals;
  // Episode count scaled so matched trajectories stay plentiful: the match
  // probability is p1^horizon.
  const auto episodes = static_cast<std::size_t>(
      std::min(60000.0, 200.0 / std::pow(p1, static_cast<double>(horizon))));
  for (int rep = 0; rep < 30; ++rep) {
    const TrajectoryDataset data =
        simulate_chain(episodes, horizon, p1, rng);
    traj_vals.add(traj.evaluate(data, always1).value);
    pdis_vals.add(pdis.evaluate(data, always1).value);
  }
  EXPECT_NEAR(traj_vals.mean(), truth,
              4 * traj_vals.stderr_mean() + 1e-9)
      << "horizon=" << horizon << " p1=" << p1;
  EXPECT_NEAR(pdis_vals.mean(), truth,
              4 * pdis_vals.stderr_mean() + 1e-9)
      << "horizon=" << horizon << " p1=" << p1;
}

INSTANTIATE_TEST_SUITE_P(
    HorizonsAndSkews, SequenceUnbiasedness,
    ::testing::Values(Case{2, 0.5}, Case{2, 0.7}, Case{4, 0.5},
                      Case{4, 0.7}, Case{6, 0.6}));

class StepwiseBias : public ::testing::TestWithParam<Case> {};

TEST_P(StepwiseBias, StepwiseOverestimatesAlways1) {
  // The mixture of logged loads understates what always-1 would induce, so
  // stepwise IPS overestimates whenever p1 < 1 and the horizon > 1.
  const auto [horizon, p1] = GetParam();
  util::Rng rng(9500 + horizon);
  const TrajectoryDataset data = simulate_chain(20000, horizon, p1, rng);
  const StepwiseIpsAdapter stepwise;
  const ConstantPolicy always1(2, 1);
  const double est = stepwise.evaluate(data, always1).value;
  EXPECT_GT(est, truth_always1(horizon) + 0.05)
      << "horizon=" << horizon << " p1=" << p1;
}

INSTANTIATE_TEST_SUITE_P(HorizonsAndSkews, StepwiseBias,
                         ::testing::Values(Case{4, 0.5}, Case{6, 0.5},
                                           Case{4, 0.3}));

class WeightedVariants : public ::testing::TestWithParam<Case> {};

TEST_P(WeightedVariants, SelfNormalizationReducesSpread) {
  const auto [horizon, p1] = GetParam();
  util::Rng rng(9900 + horizon);
  const ConstantPolicy always1(2, 1);
  const TrajectoryIpsEstimator plain(false);
  const TrajectoryIpsEstimator weighted(true);
  stats::Summary plain_vals, weighted_vals;
  for (int rep = 0; rep < 40; ++rep) {
    const TrajectoryDataset data = simulate_chain(400, horizon, p1, rng);
    plain_vals.add(plain.evaluate(data, always1).value);
    weighted_vals.add(weighted.evaluate(data, always1).value);
  }
  EXPECT_LE(weighted_vals.stddev(), plain_vals.stddev() * 1.05)
      << "horizon=" << horizon << " p1=" << p1;
}

INSTANTIATE_TEST_SUITE_P(HorizonsAndSkews, WeightedVariants,
                         ::testing::Values(Case{4, 0.4}, Case{6, 0.5}));

}  // namespace
}  // namespace harvest::core
