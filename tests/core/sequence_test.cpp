// Tests of the sequence-aware estimators (§5 extension): exact values on
// hand-built trajectories, unbiasedness on a closed-loop toy environment
// where the single-step estimator is provably biased, and the variance
// ordering per-decision <= trajectory IS.
#include "core/estimators/sequence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/policies/basic.h"
#include "stats/summary.h"

namespace harvest::core {
namespace {

Trajectory make_trajectory(
    std::vector<std::tuple<double, ActionId, double, double>> steps) {
  Trajectory t;
  for (const auto& [x, a, r, p] : steps) {
    t.steps.push_back({FeatureVector{x}, a, r, p});
  }
  return t;
}

TEST(TrajectoryTest, MeanRewardAndChop) {
  Trajectory t = make_trajectory({{0, 0, 0.2, 0.5}, {0, 1, 0.8, 0.5}});
  EXPECT_DOUBLE_EQ(t.mean_reward(), 0.5);
  EXPECT_EQ(t.horizon(), 2u);

  ExplorationDataset flat(2, {0, 1});
  for (int i = 0; i < 7; ++i) {
    flat.add({FeatureVector{static_cast<double>(i)}, 0, 0.1, 0.5});
  }
  const TrajectoryDataset chopped = chop_into_trajectories(flat, 3);
  EXPECT_EQ(chopped.size(), 2u);  // 7 = 2*3 + dropped tail of 1
  EXPECT_EQ(chopped.max_horizon(), 3u);
  EXPECT_DOUBLE_EQ(chopped[0].steps[0].context[0], 0.0);
  EXPECT_DOUBLE_EQ(chopped[1].steps[0].context[0], 3.0);
  EXPECT_THROW(chop_into_trajectories(flat, 0), std::invalid_argument);
}

TEST(TrajectoryDatasetTest, Validation) {
  TrajectoryDataset data(2, {0, 1});
  EXPECT_THROW(data.add(Trajectory{}), std::invalid_argument);
  EXPECT_THROW(data.add(make_trajectory({{0, 5, 0.1, 0.5}})),
               std::invalid_argument);
  EXPECT_THROW(data.add(make_trajectory({{0, 0, 0.1, 0.0}})),
               std::invalid_argument);
}

TEST(TrajectoryIpsTest, ExactValueOnHandData) {
  TrajectoryDataset data(2, {0, 1});
  // Trajectory 1: both actions 0, p = 0.5 each -> weight for always-0 is 4.
  data.add(make_trajectory({{0, 0, 0.5, 0.5}, {0, 0, 1.0, 0.5}}));
  // Trajectory 2: second action is 1 -> weight 0 for always-0.
  data.add(make_trajectory({{0, 0, 0.5, 0.5}, {0, 1, 1.0, 0.5}}));

  const TrajectoryIpsEstimator traj_ips;
  const ConstantPolicy always0(2, 0);
  // Contributions: 4 * 0.75 = 3 and 0 -> mean 1.5.
  const Estimate est = traj_ips.evaluate(data, always0);
  EXPECT_NEAR(est.value, 1.5, 1e-12);
  EXPECT_EQ(est.matched, 1u);
  EXPECT_EQ(est.n, 2u);
}

TEST(PerDecisionIpsTest, ExactValueOnHandData) {
  TrajectoryDataset data(2, {0, 1});
  data.add(make_trajectory({{0, 0, 0.5, 0.5}, {0, 1, 1.0, 0.5}}));
  const PerDecisionIpsEstimator pdis;
  const ConstantPolicy always0(2, 0);
  // Step 1: rho = 2, contributes 2*0.5 = 1. Step 2: rho collapses to 0.
  // Mean over horizon 2: 0.5.
  EXPECT_NEAR(pdis.evaluate(data, always0).value, 0.5, 1e-12);
}

TEST(SelfNormalizedVariants, BoundedByObservedRewards) {
  util::Rng rng(1);
  TrajectoryDataset data(2, {0, 1});
  for (int i = 0; i < 50; ++i) {
    Trajectory t;
    for (int s = 0; s < 4; ++s) {
      t.steps.push_back({FeatureVector{0.0},
                         rng.bernoulli(0.7) ? 0u : 1u,
                         rng.uniform(0.2, 0.6), rng.bernoulli(0.5) ? 0.7 : 0.3});
    }
    data.add(std::move(t));
  }
  const TrajectoryIpsEstimator weighted(true);
  const ConstantPolicy always0(2, 0);
  const double v = weighted.evaluate(data, always0).value;
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 0.7);  // convex-combination-ish of observed rewards
}

/// Closed-loop toy environment (two steps, one binary "load" state):
///   step 1: context load=0; choosing action 1 sets load=1 for step 2.
///   step 2: context = load; reward of action a = 0.9 - 0.6*load (a==1)
///           or 0.4 (a==0).
/// Under a uniform logging policy, contexts at step 2 mix load 0/1; the
/// single-step IPS estimate for "always 1" uses that mixture and
/// over-estimates, because deploying always-1 would make load=1 *always*.
/// Trajectory/per-decision IS weight full sequences and get it right.
struct ToyEpisode {
  Trajectory trajectory;
};

TrajectoryDataset simulate_toy(std::size_t episodes, double p_action1,
                               util::Rng& rng) {
  TrajectoryDataset data(2, {0, 1});
  for (std::size_t e = 0; e < episodes; ++e) {
    Trajectory t;
    const ActionId a1 = rng.bernoulli(p_action1) ? 1 : 0;
    const double r1 = 0.5;  // step-1 reward is action-independent
    t.steps.push_back(
        {FeatureVector{0.0}, a1, r1, a1 == 1 ? p_action1 : 1 - p_action1});
    const double load = a1 == 1 ? 1.0 : 0.0;
    const ActionId a2 = rng.bernoulli(p_action1) ? 1 : 0;
    const double r2 = a2 == 1 ? 0.9 - 0.6 * load : 0.4;
    t.steps.push_back(
        {FeatureVector{load}, a2, r2, a2 == 1 ? p_action1 : 1 - p_action1});
    data.add(std::move(t));
  }
  return data;
}

// True per-step value of always-1: (0.5 + 0.3) / 2 = 0.4.
// Stepwise IPS converges to (0.5 + E[0.9 - 0.6*load_logged]) / 2 with
// load_logged ~ Bernoulli(p_action1) — an overestimate whenever
// p_action1 < 1.
TEST(SequenceVsStepwise, StepwiseBiasedUnderContextFeedback) {
  util::Rng rng(2);
  const TrajectoryDataset data = simulate_toy(40000, 0.5, rng);
  const ConstantPolicy always1(2, 1);

  const StepwiseIpsAdapter stepwise;
  const TrajectoryIpsEstimator trajectory;
  const PerDecisionIpsEstimator per_decision;

  const double truth = 0.4;
  const double biased_limit = (0.5 + 0.9 - 0.6 * 0.5) / 2;  // 0.55

  EXPECT_NEAR(stepwise.evaluate(data, always1).value, biased_limit, 0.02);
  EXPECT_NEAR(trajectory.evaluate(data, always1).value, truth, 0.02);
  EXPECT_NEAR(per_decision.evaluate(data, always1).value, truth, 0.02);
}

TEST(SequenceVsStepwise, PerDecisionVarianceNoWorseThanTrajectory) {
  util::Rng rng(3);
  const ConstantPolicy always1(2, 1);
  const TrajectoryIpsEstimator trajectory;
  const PerDecisionIpsEstimator per_decision;
  stats::Summary traj_values, pdis_values;
  for (int rep = 0; rep < 60; ++rep) {
    const TrajectoryDataset data = simulate_toy(300, 0.3, rng);
    traj_values.add(trajectory.evaluate(data, always1).value);
    pdis_values.add(per_decision.evaluate(data, always1).value);
  }
  EXPECT_LE(pdis_values.stddev(), traj_values.stddev() * 1.05);
  // Both centred on the truth.
  EXPECT_NEAR(traj_values.mean(), 0.4, 0.03);
  EXPECT_NEAR(pdis_values.mean(), 0.4, 0.03);
}

TEST(SequenceEstimators, LongHorizonWeightsStayFinite) {
  // 60-step trajectories with ratio 2 per step would overflow a naive
  // product (2^60); the log-space implementation must stay finite.
  TrajectoryDataset data(2, {0, 1});
  Trajectory t;
  for (int s = 0; s < 60; ++s) {
    t.steps.push_back({FeatureVector{0.0}, 0, 0.5, 0.5});
  }
  data.add(std::move(t));
  const TrajectoryIpsEstimator trajectory;
  const ConstantPolicy always0(2, 0);
  const Estimate est = trajectory.evaluate(data, always0);
  EXPECT_TRUE(std::isfinite(est.value));
  EXPECT_NEAR(est.value, std::pow(2.0, 60) * 0.5, std::pow(2.0, 60) * 1e-9);
}

TEST(SequenceEstimators, Validation) {
  const TrajectoryDataset empty(2, {0, 1});
  const TrajectoryIpsEstimator trajectory;
  const ConstantPolicy always0(2, 0);
  EXPECT_THROW(trajectory.evaluate(empty, always0), std::invalid_argument);
  TrajectoryDataset data(3, {0, 1});
  data.add(make_trajectory({{0, 0, 0.5, 0.5}}));
  EXPECT_THROW(trajectory.evaluate(data, always0), std::invalid_argument);
}

/// A fixed-table reward model over the toy environment's two contexts.
class ToyModel final : public RewardModel {
 public:
  // predict(load, a): step-2 truth is a==1 ? 0.9-0.6*load : 0.4; step-1
  // reward is 0.5 for both. Use the step-2 truth blended with 0.5 — an
  // intentionally *imperfect* model.
  double predict(const FeatureVector& x, ActionId a) const override {
    const double load = x[0];
    const double step2 = a == 1 ? 0.9 - 0.6 * load : 0.4;
    return 0.5 * step2 + 0.25;
  }
  std::size_t num_actions() const override { return 2; }
  std::string name() const override { return "toy"; }
};

TEST(SequenceDoublyRobust, UnbiasedWithImperfectModel) {
  util::Rng rng(4);
  const TrajectoryDataset data = simulate_toy(40000, 0.5, rng);
  const ConstantPolicy always1(2, 1);
  const SequenceDoublyRobustEstimator dr(std::make_shared<ToyModel>());
  EXPECT_NEAR(dr.evaluate(data, always1).value, 0.4, 0.02);
}

TEST(SequenceDoublyRobust, LowerVarianceThanPerDecisionIs) {
  util::Rng rng(5);
  const ConstantPolicy always1(2, 1);
  const SequenceDoublyRobustEstimator dr(std::make_shared<ToyModel>());
  const PerDecisionIpsEstimator pdis;
  stats::Summary dr_values, pdis_values;
  for (int rep = 0; rep < 60; ++rep) {
    const TrajectoryDataset data = simulate_toy(300, 0.3, rng);
    dr_values.add(dr.evaluate(data, always1).value);
    pdis_values.add(pdis.evaluate(data, always1).value);
  }
  EXPECT_LT(dr_values.stddev(), pdis_values.stddev());
  EXPECT_NEAR(dr_values.mean(), 0.4, 0.02);
}

TEST(SequenceDoublyRobust, WeightedVariantIsConsistent) {
  util::Rng rng(6);
  const TrajectoryDataset data = simulate_toy(30000, 0.5, rng);
  const ConstantPolicy always1(2, 1);
  const SequenceDoublyRobustEstimator wdr(std::make_shared<ToyModel>(),
                                          /*self_normalized=*/true);
  EXPECT_NEAR(wdr.evaluate(data, always1).value, 0.4, 0.03);
}

TEST(SequenceDoublyRobust, Validation) {
  EXPECT_THROW(SequenceDoublyRobustEstimator(nullptr),
               std::invalid_argument);
  util::Rng rng(7);
  const TrajectoryDataset data = simulate_toy(10, 0.5, rng);
  // 3-action model against 2-action data.
  auto wrong = std::make_shared<RidgeRewardModel>(3, 1, 1.0);
  const SequenceDoublyRobustEstimator dr(wrong);
  const ConstantPolicy always1(2, 1);
  EXPECT_THROW(dr.evaluate(data, always1), std::invalid_argument);
}

TEST(SequenceEstimators, NamesAreStable) {
  EXPECT_EQ(TrajectoryIpsEstimator().name(), "trajectory-ips");
  EXPECT_EQ(TrajectoryIpsEstimator(true).name(), "trajectory-ips(weighted)");
  EXPECT_EQ(PerDecisionIpsEstimator().name(), "per-decision-ips");
  EXPECT_EQ(StepwiseIpsAdapter().name(), "stepwise-ips");
  auto model = std::make_shared<ToyModel>();
  EXPECT_EQ(SequenceDoublyRobustEstimator(model).name(), "sequence-dr");
  EXPECT_EQ(SequenceDoublyRobustEstimator(model, true).name(),
            "sequence-dr(weighted)");
}

}  // namespace
}  // namespace harvest::core
