#include "core/train/trainer.h"

#include <gtest/gtest.h>

#include "core/policies/basic.h"

namespace harvest::core {
namespace {

/// Environment where the best action flips with the context: action 0 is
/// best for x > 0.5, action 1 otherwise. Linear rewards, so the ridge
/// learners can represent the truth exactly.
FullFeedbackDataset crossover_env(std::size_t n, util::Rng& rng,
                                  double noise = 0.0) {
  FullFeedbackDataset data(2, RewardRange{0, 1});
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform();
    const double eps0 = noise > 0 ? rng.normal(0, noise) : 0.0;
    const double eps1 = noise > 0 ? rng.normal(0, noise) : 0.0;
    data.add(FullFeedbackPoint{
        FeatureVector{x},
        {std::clamp(0.2 + 0.6 * x + eps0, 0.0, 1.0),
         std::clamp(0.8 - 0.6 * x + eps1, 0.0, 1.0)}});
  }
  return data;
}

TEST(SupervisedTrainerTest, NearOptimalOnLinearEnvironment) {
  util::Rng rng(1);
  const FullFeedbackDataset train = crossover_env(3000, rng);
  const FullFeedbackDataset test = crossover_env(3000, rng);
  const PolicyPtr policy = train_supervised_policy(train, {});
  EXPECT_GT(test.true_value(*policy), 0.98 * test.best_value());
}

TEST(CbTrainerTest, LearnsFromExplorationData) {
  util::Rng rng(2);
  const FullFeedbackDataset env = crossover_env(8000, rng, 0.05);
  const FullFeedbackDataset test = crossover_env(3000, rng, 0.05);
  const UniformRandomPolicy logging(2);
  const ExplorationDataset exploration =
      env.simulate_exploration(logging, rng);
  const PolicyPtr cb = train_cb_policy(exploration, {});
  const double cb_value = test.true_value(*cb);
  // Beats both constants and random, approaches the skyline.
  EXPECT_GT(cb_value, test.true_value(ConstantPolicy(2, 0)));
  EXPECT_GT(cb_value, test.true_value(ConstantPolicy(2, 1)));
  EXPECT_GT(cb_value, test.true_value(UniformRandomPolicy(2)));
  EXPECT_GT(cb_value, 0.95 * test.best_value());
}

TEST(CbTrainerTest, MoreDataMonotonicallyBetterOnAverage) {
  util::Rng rng(3);
  const FullFeedbackDataset env = crossover_env(10000, rng, 0.1);
  const FullFeedbackDataset test = crossover_env(4000, rng, 0.1);
  const UniformRandomPolicy logging(2);
  double v_small_sum = 0, v_large_sum = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const ExplorationDataset exp = env.simulate_exploration(logging, rng);
    v_small_sum += test.true_value(*train_cb_policy(exp.prefix(100), {}));
    v_large_sum += test.true_value(*train_cb_policy(exp.prefix(8000), {}));
  }
  EXPECT_GE(v_large_sum, v_small_sum);
}

TEST(CbTrainerTest, WithModelExposesConsistentModel) {
  util::Rng rng(4);
  const FullFeedbackDataset env = crossover_env(5000, rng);
  const UniformRandomPolicy logging(2);
  const ExplorationDataset exp = env.simulate_exploration(logging, rng);
  const auto [policy, model] = train_cb_policy_with_model(exp, {});
  // Greedy choice must equal the model argmax.
  for (double x : {0.1, 0.5, 0.9}) {
    const FeatureVector ctx{x};
    const ActionId greedy =
        model->predict(ctx, 0) >= model->predict(ctx, 1) ? 0 : 1;
    util::Rng tmp(0);
    EXPECT_EQ(policy->act(ctx, tmp), greedy) << "x=" << x;
  }
}

TEST(EpochGreedyTest, ImprovesWithInteraction) {
  util::Rng rng(5);
  const FullFeedbackDataset env = crossover_env(20000, rng, 0.05);
  EpochGreedyTrainer::Config config;
  config.explore_fraction = 0.2;
  config.learning_rate = 0.5;
  EpochGreedyTrainer trainer(2, 1, config);

  // Interact online with the environment.
  for (const auto& pt : env.points()) {
    const ActionId a = trainer.step(pt.context, rng);
    trainer.learn(pt.context, a, pt.rewards[a]);
  }
  EXPECT_GT(trainer.explore_steps(), 0u);
  EXPECT_GT(trainer.exploit_steps(), trainer.explore_steps());

  const FullFeedbackDataset test = crossover_env(3000, rng, 0.05);
  const PolicyPtr snapshot = trainer.snapshot();
  EXPECT_GT(test.true_value(*snapshot), 0.9 * test.best_value());
}

TEST(EpochGreedyTest, PropensityAccounting) {
  EpochGreedyTrainer::Config config;
  config.explore_fraction = 0.5;
  EpochGreedyTrainer trainer(4, 1, config);
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    trainer.step(FeatureVector{0.0}, rng);
    const double p = trainer.last_propensity();
    // Either exploring (0.5/4) or exploiting (0.5 + 0.125).
    EXPECT_TRUE(std::abs(p - 0.125) < 1e-12 || std::abs(p - 0.625) < 1e-12);
  }
}

TEST(EpochGreedyTest, Validation) {
  EXPECT_THROW(EpochGreedyTrainer(0, 1, {}), std::invalid_argument);
  EpochGreedyTrainer::Config bad;
  bad.explore_fraction = 0.0;
  EXPECT_THROW(EpochGreedyTrainer(2, 1, bad), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::core
