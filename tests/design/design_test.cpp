// Tests of the logging-policy planner and its deployable artifact, the
// versioned LoggingPlan JSON: feasibility invariants (floor, simplex rows,
// regret budget, never-worse-than-eps-greedy), bit-exact JSON round-trips,
// malformed-input rejection, agreement between the plan's stratum function
// and the serving layer's greedy, and thread-count bit-identity of the
// whole solve.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/policies/basic.h"
#include "core/reward_model.h"
#include "design/plan.h"
#include "design/planner.h"
#include "par/thread_pool.h"
#include "serve/snapshot.h"
#include "testing/fixtures.h"

namespace harvest::design {
namespace {

using harvest::testing::make_environment;

constexpr std::size_t kActions = 3;
constexpr std::size_t kDim = 1;

/// Reference linear policy (kActions rows of kDim+1 doubles, bias first):
/// action 0 scores x, action 1 scores 0.5, action 2 scores 1-x — so the
/// greedy stratum flips from 2 to 0 at x = 0.5 and stratum 1 is empty.
std::vector<double> reference_weights() {
  return {0.0, 1.0,   // action 0
          0.5, 0.0,   // action 1
          1.0, -1.0}; // action 2
}

struct PlannerInputs {
  core::ExplorationDataset harvest;
  std::vector<core::PolicyPtr> candidates;
  std::shared_ptr<core::RidgeRewardModel> model;
};

PlannerInputs make_inputs(std::size_t n = 1500, std::uint64_t seed = 11) {
  util::Rng rng(seed);
  const core::FullFeedbackDataset env = make_environment(n, rng);
  const core::EpsilonGreedyPolicy logging(
      std::make_shared<core::ConstantPolicy>(kActions, 1), 0.4);
  PlannerInputs in{env.simulate_exploration(logging, rng), {}, nullptr};
  in.candidates.push_back(
      std::make_shared<core::ConstantPolicy>(kActions, 0));
  in.candidates.push_back(std::make_shared<core::FunctionPolicy>(
      kActions,
      [](const core::FeatureVector& x) { return x[0] > 0.4 ? 0u : 2u; },
      "threshold"));
  in.candidates.push_back(
      std::make_shared<core::UniformRandomPolicy>(kActions));
  in.model = std::make_shared<core::RidgeRewardModel>(
      core::fit_ridge(in.harvest, 1.0, true));
  return in;
}

PlannerReport plan(const PlannerInputs& in, PlannerConfig config = {}) {
  return plan_logging(in.harvest, in.candidates, *in.model,
                      reference_weights(), kDim, config);
}

TEST(PlannerTest, PlanSatisfiesFloorSimplexAndBudget) {
  const PlannerInputs in = make_inputs();
  PlannerConfig config;
  config.propensity_floor = 0.04;
  const PlannerReport report = plan(in, config);

  const LoggingPlan& p = report.plan;
  ASSERT_EQ(p.num_actions, kActions);
  ASSERT_EQ(p.distributions.size(), kActions * kActions);
  for (std::size_t s = 0; s < kActions; ++s) {
    double sum = 0;
    for (const double q : p.stratum_distribution(s)) {
      EXPECT_GE(q, config.propensity_floor - 1e-12);
      EXPECT_LE(q, 1.0);
      sum += q;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "stratum " << s;
  }
  // The planner may never do worse than its own eps-greedy baseline (it
  // falls back to the baseline plan if the solve cannot beat it).
  EXPECT_LE(report.planned_objective, report.baseline_objective + 1e-9);
  // The enforced regret budget holds for the emitted plan.
  EXPECT_LE(report.planned_regret, report.regret_budget + 1e-9);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(report.candidates.size(), in.candidates.size());
}

TEST(PlannerTest, BeatsBaselineOnSkewedCandidates) {
  // The candidates concentrate on actions 0/2 while eps-greedy logging
  // centers on the reference strata uniformly; the planner should find
  // strictly lower worst-case variance here, not just fall back.
  const PlannerReport report = plan(make_inputs(3000, 19));
  EXPECT_FALSE(report.fell_back_to_baseline);
  EXPECT_LT(report.planned_objective, report.baseline_objective);
}

TEST(PlannerTest, ValidatesInputs) {
  const PlannerInputs in = make_inputs(200, 23);
  // No candidates.
  EXPECT_THROW(plan_logging(in.harvest, {}, *in.model, reference_weights(),
                            kDim, {}),
               std::invalid_argument);
  // Infeasible floor: floor * K > 1.
  PlannerConfig bad_floor;
  bad_floor.propensity_floor = 0.5;
  EXPECT_THROW(plan(in, bad_floor), std::invalid_argument);
  // Floor above eps/K makes the baseline itself violate the floor.
  PlannerConfig floor_vs_eps;
  floor_vs_eps.propensity_floor = 0.1;
  floor_vs_eps.baseline_epsilon = 0.2;  // eps/K = 0.0667 < 0.1
  EXPECT_THROW(plan(in, floor_vs_eps), std::invalid_argument);
  // Empty harvest.
  const core::ExplorationDataset empty(kActions, core::RewardRange{0, 1});
  EXPECT_THROW(plan_logging(empty, in.candidates, *in.model,
                            reference_weights(), kDim, {}),
               std::invalid_argument);
}

TEST(LoggingPlanTest, JsonRoundTripIsBitExact) {
  const PlannerReport report = plan(make_inputs());
  const std::string json = report.plan.to_json();
  const LoggingPlan parsed = LoggingPlan::parse_json(json, "test");
  // %.17g doubles: re-serializing the parsed plan reproduces the bytes.
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.num_actions, report.plan.num_actions);
  EXPECT_EQ(parsed.distributions, report.plan.distributions);
  EXPECT_EQ(parsed.reference_weights, report.plan.reference_weights);
  EXPECT_EQ(parsed.candidate_names, report.plan.candidate_names);
}

TEST(LoggingPlanTest, ParseRejectsMalformedInput) {
  const std::string json = plan(make_inputs(300, 29)).plan.to_json();
  // Garbage and truncation.
  EXPECT_THROW(LoggingPlan::parse_json("not json", "t"),
               std::invalid_argument);
  EXPECT_THROW(LoggingPlan::parse_json("", "t"), std::invalid_argument);
  EXPECT_THROW(
      LoggingPlan::parse_json(json.substr(0, json.size() / 2), "t"),
      std::invalid_argument);
  // Unsupported version.
  std::string bad_version = json;
  bad_version.replace(bad_version.find("\"logging_plan\": 1"),
                      std::string("\"logging_plan\": 1").size(),
                      "\"logging_plan\": 999");
  EXPECT_THROW(LoggingPlan::parse_json(bad_version, "t"),
               std::invalid_argument);
  // A plan whose rows no longer sum to 1 must fail validation on parse.
  std::string bad_rows = json;
  const std::string floor_key = "\"propensity_floor\": ";
  const std::size_t pos = bad_rows.find(floor_key) + floor_key.size();
  const std::size_t end = bad_rows.find(',', pos);
  bad_rows.replace(pos, end - pos, "0.9");  // floor 0.9 * 3 rows > 1
  EXPECT_THROW(LoggingPlan::parse_json(bad_rows, "t"),
               std::invalid_argument);
}

TEST(LoggingPlanTest, ValidateRejectsBrokenPlans) {
  LoggingPlan base = plan(make_inputs(300, 31)).plan;
  EXPECT_NO_THROW(base.validate());

  LoggingPlan bad = base;
  bad.distributions[0] += 0.1;  // row 0 no longer sums to 1
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = base;
  bad.distributions[1] = 0.0;  // zero propensity breaks harvestability
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = base;
  bad.reference_weights.pop_back();  // geometry mismatch
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = base;
  bad.distributions[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(LoggingPlanTest, StratumOfAgreesWithServeGreedy) {
  // The plan's stratum function IS the serving snapshot's greedy: same
  // arithmetic, same lowest-id tie-break. Disagreement would make the
  // executor log propensities from the wrong plan row.
  const LoggingPlan p = plan(make_inputs(400, 37)).plan;
  const serve::PolicySnapshot snapshot(1, kActions, kDim,
                                       std::vector<double>(p.reference_weights),
                                       /*epsilon=*/0.0);
  util::Rng rng(38);
  for (int i = 0; i < 500; ++i) {
    // Include the tie point x = 0.5 and out-of-range contexts.
    const double x = (i == 0) ? 0.5 : rng.uniform(-0.5, 1.5);
    const std::span<const double> ctx(&x, 1);
    EXPECT_EQ(p.stratum_of(ctx), snapshot.greedy(ctx)) << "x=" << x;
  }
}

TEST(PlannerDeterminism, PlanJsonBitIdenticalAcrossThreadCounts) {
  const PlannerInputs in = make_inputs(2500, 41);
  par::set_default_threads(1);
  const PlannerReport baseline = plan(in);
  const std::string baseline_json = baseline.plan.to_json();
  for (const std::size_t threads : {2u, 8u}) {
    par::set_default_threads(threads);
    const PlannerReport run = plan(in);
    EXPECT_EQ(baseline_json, run.plan.to_json()) << "threads=" << threads;
    EXPECT_EQ(baseline.planned_objective, run.planned_objective);
    EXPECT_EQ(baseline.baseline_objective, run.baseline_objective);
    EXPECT_EQ(baseline.planned_regret, run.planned_regret);
  }
  par::set_default_threads(1);
}

}  // namespace
}  // namespace harvest::design
