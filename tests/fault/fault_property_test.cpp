// Property tests for the fault injector + hardened read path: whatever the
// injector does, every line and every decision must be accounted for exactly
// once — conservation is the invariant that makes quarantine counts trustworthy.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_spec.h"
#include "fault/injector.h"
#include "logs/log_store.h"
#include "logs/scavenger.h"
#include "util/rng.h"

namespace harvest::fault {
namespace {

logs::LogStore random_log(util::Rng& rng, std::size_t n) {
  logs::LogStore log;
  for (std::size_t i = 0; i < n; ++i) {
    logs::Record rec;
    rec.time = static_cast<double>(i) * 0.25;
    rec.event = "decide";
    rec.set("x", rng.uniform(-1.0, 1.0));
    rec.set("y", rng.uniform(0.0, 5.0));
    rec.set("a", static_cast<std::int64_t>(rng.uniform_index(4)));
    rec.set("r", rng.uniform(0.0, 1.0));
    rec.set("p", 0.25);
    log.append(std::move(rec));
  }
  return log;
}

std::vector<std::string> non_empty_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

logs::ScavengeSpec base_spec() {
  logs::ScavengeSpec spec;
  spec.decision_event = "decide";
  spec.context_fields = {"x", "y"};
  spec.action_field = "a";
  spec.reward_field = "r";
  spec.propensity_field = "p";
  spec.num_actions = 4;
  spec.reward_range = {0.0, 1.0};
  spec.reward_transform = [](double r) { return r; };
  return spec;
}

// Parse-layer conservation: every non-empty line of the corrupted corpus is
// either parsed or quarantined, for any fault mixture and seed.
TEST(FaultPropertyTest, ReadLedgerBalancesUnderAnyMixture) {
  util::Rng data_rng(99);
  const logs::LogStore log = random_log(data_rng, 600);
  const std::vector<std::string> mixtures = {
      "torn=0.15",
      "dup=0.2",
      "reorder=0.25:7",
      "corrupt=0.1",
      "torn=0.08,dup=0.05,reorder=0.1:4,corrupt=0.06,skew=0.1:3",
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const auto& mixture : mixtures) {
      const FaultInjector injector(seed, parse_fault_specs(mixture));
      const auto [text, report] = injector.inject(log);
      const auto lines = non_empty_lines(text);
      EXPECT_EQ(lines.size(), report.lines_out) << mixture << " seed " << seed;

      std::istringstream stream(text);
      const auto [store, stats] = logs::LogStore::read_text_chunked(stream);
      EXPECT_EQ(stats.lines_seen, lines.size());
      EXPECT_EQ(stats.parsed + stats.malformed + stats.oversized,
                stats.lines_seen)
          << mixture << " seed " << seed;
      EXPECT_EQ(store.size(), stats.parsed);
    }
  }
}

// Duplication only adds exact copies; reordering only permutes. The surviving
// line multiset proves it.
TEST(FaultPropertyTest, DupAndReorderPreserveLineMultiset) {
  util::Rng data_rng(7);
  const logs::LogStore log = random_log(data_rng, 500);
  std::ostringstream clean_out;
  log.write_text(clean_out);
  const auto clean_lines = non_empty_lines(clean_out.str());

  auto multiset_of = [](const std::vector<std::string>& lines) {
    std::map<std::string, std::size_t> counts;
    for (const auto& line : lines) ++counts[line];
    return counts;
  };
  const auto clean_counts = multiset_of(clean_lines);

  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const FaultInjector injector(seed,
                                 parse_fault_specs("dup=0.15,reorder=0.2:6"));
    const auto [text, report] = injector.inject(log);
    const auto lines = non_empty_lines(text);
    ASSERT_EQ(lines.size(), clean_lines.size() + report.duplicated);

    // Every corrupted-corpus line is a clean line, and each appears at least
    // as often as in the clean corpus (dup can only raise counts).
    const auto counts = multiset_of(lines);
    std::size_t extras = 0;
    for (const auto& [line, count] : counts) {
      const auto it = clean_counts.find(line);
      ASSERT_NE(it, clean_counts.end()) << "injector fabricated a line";
      ASSERT_GE(count, it->second);
      extras += count - it->second;
    }
    EXPECT_EQ(extras, report.duplicated);
  }
}

// Scavenge-layer conservation at ~10% corruption: decisions_seen equals
// harvested tuples plus the per-class quarantine counts, and the callback
// channel fires exactly once per drop with a matching classification tally.
TEST(FaultPropertyTest, QuarantineClassesPartitionTheDrops) {
  util::Rng data_rng(41);
  const logs::LogStore log = random_log(data_rng, 800);
  const auto specs = parse_fault_specs(
      "torn=0.04,corrupt=0.03,drop-p=0.02,bad-p=0.01");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const FaultInjector injector(seed, specs);
    const auto [text, injection] = injector.inject(log);
    std::istringstream stream(text);
    const auto [store, stats] = logs::LogStore::read_text_chunked(stream);
    ASSERT_EQ(store.size(), stats.parsed);

    logs::ScavengeSpec spec = base_spec();
    std::map<logs::QuarantineClass, std::size_t> callback_counts;
    spec.on_quarantine = [&](logs::QuarantineClass cls, const logs::Record&) {
      ++callback_counts[cls];
    };
    const logs::ScavengeResult result = logs::scavenge(store, spec);

    EXPECT_EQ(result.data.size() + result.total_dropped(),
              result.decisions_seen)
        << "seed " << seed;
    EXPECT_EQ(callback_counts[logs::QuarantineClass::kMissingField],
              result.dropped_missing_fields);
    EXPECT_EQ(callback_counts[logs::QuarantineClass::kBadAction],
              result.dropped_bad_action);
    EXPECT_EQ(callback_counts[logs::QuarantineClass::kBadPropensity],
              result.dropped_bad_propensity);
    EXPECT_EQ(callback_counts[logs::QuarantineClass::kStaleTimestamp],
              result.dropped_stale_timestamp);
    // Something must actually have been corrupted at these rates.
    EXPECT_GT(injection.total_mutations(), 0u);
  }
}

// When bad-p is the only fault, every invalidated propensity lands in the
// bad-propensity class (the satellite fix: previously misfiled under
// missing-fields) and nothing else is dropped anywhere.
TEST(FaultPropertyTest, BadPropensityDropsAreAttributedExactly) {
  util::Rng data_rng(5);
  const logs::LogStore log = random_log(data_rng, 700);
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const FaultInjector injector(seed, parse_fault_specs("bad-p=0.08"));
    const auto [text, injection] = injector.inject(log);
    std::istringstream stream(text);
    const auto [store, stats] = logs::LogStore::read_text_chunked(stream);
    ASSERT_EQ(stats.malformed + stats.oversized, 0u);

    const logs::ScavengeResult result = logs::scavenge(store, base_spec());
    EXPECT_EQ(result.dropped_bad_propensity,
              injection.propensities_invalidated);
    EXPECT_EQ(result.dropped_missing_fields, 0u);
    EXPECT_EQ(result.dropped_bad_action, 0u);
    EXPECT_EQ(result.dropped_stale_timestamp, 0u);
  }
}

// Stale-timestamp quarantine: records that lag the high-water mark by more
// than the cutoff are dropped as stale, and late-but-within-cutoff survive.
TEST(FaultPropertyTest, StaleTimestampCutoffIsExact) {
  logs::LogStore log;
  auto decision = [](double t) {
    logs::Record rec;
    rec.time = t;
    rec.event = "decide";
    rec.set("x", 0.1);
    rec.set("y", 0.2);
    rec.set("a", static_cast<std::int64_t>(1));
    rec.set("r", 0.5);
    rec.set("p", 0.25);
    return rec;
  };
  log.append(decision(100));
  log.append(decision(200));
  log.append(decision(195));  // 5 behind: survives a 10s cutoff
  log.append(decision(150));  // 50 behind: stale
  log.append(decision(210));
  log.append(decision(199));  // 11 behind: stale

  logs::ScavengeSpec spec = base_spec();
  spec.context_fields = {"x", "y"};
  spec.stale_after_seconds = 10;
  const logs::ScavengeResult result = logs::scavenge(log, spec);
  EXPECT_EQ(result.decisions_seen, 6u);
  EXPECT_EQ(result.dropped_stale_timestamp, 2u);
  EXPECT_EQ(result.data.size(), 4u);
}

}  // namespace
}  // namespace harvest::fault
