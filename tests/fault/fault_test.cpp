#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_spec.h"
#include "fault/injector.h"
#include "logs/log_store.h"

namespace harvest::fault {
namespace {

logs::LogStore demo_log(std::size_t n) {
  logs::LogStore log;
  for (std::size_t i = 0; i < n; ++i) {
    logs::Record rec;
    rec.time = static_cast<double>(i);
    rec.event = "decide";
    rec.set("x", 0.25 * static_cast<double>(i));
    rec.set("a", static_cast<std::int64_t>(i % 3));
    rec.set("r", 0.5);
    rec.set("p", 0.33);
    log.append(std::move(rec));
  }
  return log;
}

TEST(FaultSpecTest, ParsesKindsRatesAndMagnitudes) {
  const auto specs =
      parse_fault_specs("torn=0.05, dup=0.1,reorder=0.2:8,skew=0.5:2.5");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].kind, FaultKind::kTornLine);
  EXPECT_DOUBLE_EQ(specs[0].rate, 0.05);
  EXPECT_EQ(specs[1].kind, FaultKind::kDuplicateLine);
  EXPECT_EQ(specs[2].kind, FaultKind::kReorderLines);
  EXPECT_DOUBLE_EQ(specs[2].magnitude, 8.0);
  EXPECT_EQ(specs[3].kind, FaultKind::kSkewTimestamp);
  EXPECT_DOUBLE_EQ(specs[3].magnitude, 2.5);
}

TEST(FaultSpecTest, EmptySpecYieldsNoFaults) {
  EXPECT_TRUE(parse_fault_specs("").empty());
  EXPECT_TRUE(parse_fault_specs("  ").empty());
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_specs("nonsense=0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("torn"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("torn=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("torn=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("reorder=0.1:-2"), std::invalid_argument);
}

TEST(FaultSpecTest, RoundTripsThroughToString) {
  const auto specs = parse_fault_specs("torn=0.05,bad-p=0.01,reorder=0.1:8");
  const auto reparsed = parse_fault_specs(to_string(specs));
  ASSERT_EQ(reparsed.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(reparsed[i].kind, specs[i].kind);
    EXPECT_NEAR(reparsed[i].rate, specs[i].rate, 1e-4);
  }
}

TEST(FaultInjectorTest, SameSeedSameCorpus) {
  const logs::LogStore log = demo_log(500);
  const auto specs = parse_fault_specs(
      "torn=0.1,dup=0.05,reorder=0.1,corrupt=0.1,bad-p=0.05,skew=0.2");
  const FaultInjector a(1234, specs);
  const FaultInjector b(1234, specs);
  const auto [text_a, report_a] = a.inject(log);
  const auto [text_b, report_b] = b.inject(log);
  EXPECT_EQ(text_a, text_b);
  EXPECT_EQ(report_a.total_mutations(), report_b.total_mutations());
  EXPECT_GT(report_a.total_mutations(), 0u);

  const FaultInjector c(1235, specs);
  const auto [text_c, report_c] = c.inject(log);
  EXPECT_NE(text_a, text_c);  // different seed, different corpus
  EXPECT_EQ(report_c.lines_in, report_a.lines_in);
}

TEST(FaultInjectorTest, ZeroRateIsIdentity) {
  const logs::LogStore log = demo_log(100);
  std::ostringstream clean;
  log.write_text(clean);
  const FaultInjector injector(
      7, parse_fault_specs("torn=0,dup=0,corrupt=0"));
  const auto [text, report] = injector.inject(log);
  EXPECT_EQ(text, clean.str());
  EXPECT_EQ(report.total_mutations(), 0u);
  EXPECT_EQ(report.lines_in, 100u);
  EXPECT_EQ(report.lines_out, 100u);
}

TEST(FaultInjectorTest, DuplicationAddsLinesReorderKeepsThem) {
  const logs::LogStore log = demo_log(400);
  const FaultInjector dup(3, parse_fault_specs("dup=0.25"));
  const auto [dup_text, dup_report] = dup.inject(log);
  EXPECT_EQ(dup_report.lines_out,
            dup_report.lines_in + dup_report.duplicated);
  EXPECT_GT(dup_report.duplicated, 0u);
  EXPECT_FALSE(dup_text.empty());

  const FaultInjector reorder(3, parse_fault_specs("reorder=0.3:5"));
  std::ostringstream clean;
  log.write_text(clean);
  const auto [re_text, re_report] = reorder.inject(log);
  EXPECT_GT(re_report.reordered, 0u);
  EXPECT_EQ(re_report.lines_out, re_report.lines_in);
  // Reordering permutes, never loses: sorted lines match.
  auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(re_text), sorted_lines(clean.str()));
}

TEST(FaultInjectorTest, BadPropensityAlwaysQuarantinable) {
  const logs::LogStore log = demo_log(300);
  const FaultInjector injector(11, parse_fault_specs("bad-p=0.2"));
  const auto [text, report] = injector.inject(log);
  ASSERT_GT(report.propensities_invalidated, 0u);
  // Every mutated line still parses but carries an out-of-range p.
  std::istringstream stream(text);
  const auto [store, stats] = logs::LogStore::read_text_chunked(stream);
  EXPECT_EQ(stats.malformed, 0u);
  std::size_t bad = 0;
  for (const auto& rec : store.records()) {
    const auto p = rec.number("p");
    ASSERT_TRUE(p.has_value());
    if (*p <= 0 || *p > 1) ++bad;
  }
  EXPECT_EQ(bad, report.propensities_invalidated);
}

TEST(FaultInjectorTest, RejectsBadConstruction) {
  FaultSpec out_of_range;
  out_of_range.kind = FaultKind::kTornLine;
  out_of_range.rate = 1.5;
  EXPECT_THROW(FaultInjector(1, {out_of_range}), std::invalid_argument);

  FaultSpec fieldless;
  fieldless.kind = FaultKind::kBadPropensity;
  fieldless.rate = 0.1;
  fieldless.field = "";
  EXPECT_THROW(FaultInjector(1, {fieldless}), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::fault
