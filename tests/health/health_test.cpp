#include <gtest/gtest.h>

#include "core/policies/basic.h"
#include "core/train/trainer.h"
#include "health/fleet.h"
#include "health/scavenge.h"

namespace harvest::health {
namespace {

TEST(DowntimeTest, RecoveryWithinWait) {
  FailureOutcome outcome;
  outcome.recovery_minutes = 2.5;
  outcome.reboot_minutes = 4.0;
  EXPECT_DOUBLE_EQ(downtime_minutes(outcome, 5.0), 2.5);
  EXPECT_DOUBLE_EQ(downtime_minutes(outcome, 2.5), 2.5);
}

TEST(DowntimeTest, RebootAfterWait) {
  FailureOutcome outcome;
  outcome.recovery_minutes = 8.0;
  outcome.reboot_minutes = 4.0;
  EXPECT_DOUBLE_EQ(downtime_minutes(outcome, 3.0), 7.0);
}

TEST(DowntimeTest, HardFailureAlwaysReboots) {
  FailureOutcome outcome;  // recovery = +inf
  outcome.reboot_minutes = 5.0;
  EXPECT_DOUBLE_EQ(downtime_minutes(outcome, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(downtime_minutes(outcome, 9.0), 14.0);
  EXPECT_THROW(downtime_minutes(outcome, 0.0), std::invalid_argument);
}

TEST(FleetTest, ClassProbabilitiesFormDistribution) {
  const Fleet fleet(FleetConfig{});
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const MachineContext ctx = fleet.sample_machine(rng);
    double pf = 0, ps = 0, ph = 0;
    fleet.class_probabilities(ctx, pf, ps, ph);
    EXPECT_GE(pf, 0.0);
    EXPECT_GE(ps, 0.0);
    EXPECT_GE(ph, 0.0);
    EXPECT_NEAR(pf + ps + ph, 1.0, 1e-9);
  }
}

TEST(FleetTest, DiskErrorsRaiseHardFailureOdds) {
  const Fleet fleet(FleetConfig{});
  MachineContext clean;
  MachineContext dirty = clean;
  dirty.disk_errors = 1.0;
  double pf = 0, ps = 0, ph_clean = 0, ph_dirty = 0;
  fleet.class_probabilities(clean, pf, ps, ph_clean);
  fleet.class_probabilities(dirty, pf, ps, ph_dirty);
  EXPECT_GT(ph_dirty, 2 * ph_clean);
}

TEST(FleetTest, RewardsAreNormalizedAndMonotoneInDowntime) {
  const Fleet fleet(FleetConfig{});
  util::Rng rng(2);
  const MachineContext ctx = fleet.sample_machine(rng);
  FailureOutcome hard;
  hard.reboot_minutes = 4.0;
  // Hard failure: longer waits strictly worse.
  double prev = 1.0;
  for (double wait = 1; wait <= 9; ++wait) {
    const double r = fleet.reward(ctx, hard, wait);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(FleetTest, DatasetShapeAndDeterminism) {
  const Fleet fleet(FleetConfig{});
  util::Rng rng1(3), rng2(3);
  const auto d1 = fleet.generate_dataset(200, rng1);
  const auto d2 = fleet.generate_dataset(200, rng2);
  ASSERT_EQ(d1.size(), 200u);
  EXPECT_EQ(d1.num_actions(), 9u);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    ASSERT_EQ(d1[i].rewards.size(), 9u);
    EXPECT_EQ(d1[i].context.size(), MachineContext::kNumFeatures);
    for (std::size_t a = 0; a < 9; ++a) {
      EXPECT_DOUBLE_EQ(d1[i].rewards[a], d2[i].rewards[a]);
    }
  }
}

TEST(FleetTest, ShortWaitsBestForHardFailuresLongForSlowTransients) {
  // Structural property that makes the scenario learnable: the optimal wait
  // depends on the latent class, which correlates with context.
  const Fleet fleet(FleetConfig{});
  util::Rng rng(4);
  const auto data = fleet.generate_dataset(5000, rng);
  // Per-action average reward of always-wait-a.
  std::vector<double> avg(9, 0.0);
  for (const auto& pt : data.points()) {
    for (std::size_t a = 0; a < 9; ++a) avg[a] += pt.rewards[a];
  }
  for (auto& v : avg) v /= static_cast<double>(data.size());
  // Context-blind constants are all beaten by the per-context best.
  const double best_constant = *std::max_element(avg.begin(), avg.end());
  EXPECT_GT(data.best_value(), best_constant + 0.01);
}

TEST(FleetTest, CbPolicyBeatsWaitMaxDefault) {
  // The paper's headline result: the learned policy outperforms the
  // wait-max default used during data collection.
  const FleetConfig config;
  const Fleet fleet(config);
  util::Rng rng(5);
  const auto train = fleet.generate_dataset(8000, rng);
  const auto test = fleet.generate_dataset(4000, rng);

  const core::UniformRandomPolicy logging(9);
  const auto exploration = train.simulate_exploration(logging, rng);
  const core::PolicyPtr cb = core::train_cb_policy(exploration, {});

  // Default policy: wait the maximum (even longer than action 9).
  double default_reward = 0;
  util::Rng rng2(5);
  {
    // Regenerate the same episodes to score the default wait.
    const Fleet fleet2(config);
    util::Rng regen(6);
    double sum = 0;
    const std::size_t n = 4000;
    for (std::size_t i = 0; i < n; ++i) {
      const MachineContext ctx = fleet2.sample_machine(regen);
      const FailureOutcome outcome = fleet2.sample_outcome(ctx, regen);
      sum += fleet2.default_policy_reward(ctx, outcome);
    }
    default_reward = sum / static_cast<double>(n);
  }
  EXPECT_GT(test.true_value(*cb), default_reward);
}

TEST(HealthScavengeTest, LogRoundtripReconstructsDataset) {
  const FleetConfig config;
  const Fleet fleet(config);
  util::Rng rng(7);
  const logs::LogStore log = fleet.generate_log(300, rng);
  // Serialize to text and back — the scavenger sees only what a real log
  // file contains.
  const logs::LogStore from_text = log.roundtrip();
  const HealthScavengeResult result = scavenge_health_log(from_text, config);
  EXPECT_EQ(result.episodes, 300u);
  EXPECT_EQ(result.dropped, 0u);
  ASSERT_EQ(result.data.size(), 300u);
  for (const auto& pt : result.data.points()) {
    ASSERT_EQ(pt.rewards.size(), 9u);
    for (double r : pt.rewards) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(HealthScavengeTest, ScavengedDatasetIsLearnable) {
  const FleetConfig config;
  const Fleet fleet(config);
  util::Rng rng(8);
  const logs::LogStore log = fleet.generate_log(4000, rng);
  const HealthScavengeResult scavenged =
      scavenge_health_log(log.roundtrip(), config);
  const auto [train, test] = scavenged.data.split(0.5);
  const core::PolicyPtr supervised = core::train_supervised_policy(train, {});
  // Learned policy beats the best constant on held-out episodes.
  double best_constant = 0;
  for (core::ActionId a = 0; a < 9; ++a) {
    best_constant = std::max(
        best_constant, test.true_value(core::ConstantPolicy(9, a)));
  }
  EXPECT_GE(test.true_value(*supervised), 0.99 * best_constant);
}

TEST(FleetTest, VmScalingWeightsDowntimeBySlaExposure) {
  FleetConfig scaled_config;
  scaled_config.scale_by_vms = true;
  const Fleet scaled(scaled_config);
  const Fleet unscaled((FleetConfig()));

  MachineContext few_vms;
  few_vms.num_vms = 1;
  MachineContext many_vms = few_vms;
  many_vms.num_vms = 20;

  FailureOutcome outcome;
  outcome.recovery_minutes = 3.0;
  outcome.reboot_minutes = 4.0;

  // Unscaled: the VM count does not change the reward.
  EXPECT_DOUBLE_EQ(unscaled.reward(few_vms, outcome, 5.0),
                   unscaled.reward(many_vms, outcome, 5.0));
  // Scaled: the same downtime on a 20-VM machine is much worse.
  EXPECT_GT(scaled.reward(few_vms, outcome, 5.0),
            scaled.reward(many_vms, outcome, 5.0));
  // Still normalized.
  EXPECT_GE(scaled.reward(many_vms, outcome, 5.0), 0.0);
  EXPECT_LE(scaled.reward(few_vms, outcome, 5.0), 1.0);
}

TEST(FleetTest, Validation) {
  FleetConfig bad;
  bad.num_wait_actions = 0;
  EXPECT_THROW((Fleet{bad}), std::invalid_argument);
  bad = FleetConfig{};
  bad.downtime_cap_minutes = 0;
  EXPECT_THROW((Fleet{bad}), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::health
