// Thread-count invariance of the full stack: pipeline, estimators, and
// trained models must produce BIT-IDENTICAL numbers at --threads 1, 2, and
// 8 on fixed-seed fleet / load-balancer / cache logs. Doubles are compared
// with EXPECT_EQ (exact equality), not tolerances — any reordering of
// floating-point work across threads fails here.
//
// A frozen golden CSV (tests/golden/fig3_golden.csv, %.17g) additionally
// pins a miniature fig3-style sweep across commits: a change to RNG stream
// derivation, shard planning, or estimator arithmetic shows up as a diff.
// Regenerate deliberately with HARVEST_REGEN_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "design/planner.h"
#include "harvest/harvest.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/trainer.h"
#include "stats/quantile.h"
#include "testing/fixtures.h"
#include "util/hash.h"

#ifndef HARVEST_TEST_SOURCE_DIR
#error "HARVEST_TEST_SOURCE_DIR must point at the tests/ source directory"
#endif

namespace harvest {
namespace {

/// Flattens every number a scenario produces into one vector so runs can be
/// compared element-by-element.
void push_estimate(std::vector<double>& sig, const core::Estimate& est) {
  sig.push_back(est.value);
  sig.push_back(est.stderr_value);
  sig.push_back(static_cast<double>(est.matched));
  sig.push_back(est.normal_ci.lo);
  sig.push_back(est.normal_ci.hi);
  sig.push_back(est.bernstein_ci.lo);
  sig.push_back(est.bernstein_ci.hi);
  sig.push_back(est.ess);
  sig.push_back(est.max_weight);
  sig.push_back(est.clipped_fraction);
}

/// Fleet scenario: harvested exploration log -> IPS/SNIPS/DR estimates and
/// the trained policy's ridge weights.
std::vector<double> run_fleet_scenario() {
  std::vector<double> sig;
  const health::Fleet fleet((health::FleetConfig()));
  util::Rng rng(11);
  const core::FullFeedbackDataset pool = fleet.generate_dataset(3000, rng);
  const core::UniformRandomPolicy logging(
      health::FleetConfig().num_wait_actions);
  const core::ExplorationDataset exp =
      pool.simulate_exploration(logging, rng);

  const auto [policy, model] = core::train_cb_policy_with_model(exp, {});
  const auto* ridge =
      dynamic_cast<const core::RidgeRewardModel*>(model.get());
  if (ridge == nullptr) {
    ADD_FAILURE() << "trained model is not a RidgeRewardModel";
    return sig;
  }
  for (std::size_t a = 0; a < ridge->num_actions(); ++a) {
    for (double w : ridge->weights(static_cast<core::ActionId>(a))) {
      sig.push_back(w);
    }
  }

  const core::IpsEstimator ips;
  const core::SnipsEstimator snips;
  const core::DoublyRobustEstimator dr(model);
  const core::SwitchEstimator sw(model, 0.05);
  push_estimate(sig, ips.evaluate(exp, *policy));
  push_estimate(sig, snips.evaluate(exp, *policy));
  push_estimate(sig, dr.evaluate(exp, *policy));
  push_estimate(sig, sw.evaluate(exp, *policy));
  return sig;
}

/// LB scenario: full 3-step pipeline over a scavenged routing log.
std::vector<double> run_lb_scenario() {
  std::vector<double> sig;
  lb::LbConfig config = lb::fig5_config();
  config.num_requests = 6000;
  config.warmup_requests = 500;
  util::Rng rng(21);
  lb::RandomRouter logging(2);
  const lb::LbResult logged = lb::run_lb(config, logging, rng);

  pipeline::PipelineConfig pconfig;
  pconfig.spec.decision_event = "route";
  pconfig.spec.context_fields = {"conns0", "conns1", "heavy"};
  pconfig.spec.action_field = "server";
  pconfig.spec.reward_field = "latency";
  pconfig.spec.num_actions = 2;
  pconfig.spec.reward_range = {0.0, 1.0};
  const double cap = config.latency_cap;
  pconfig.spec.reward_transform = [cap](double lat) {
    return lb::latency_to_reward(lat, cap);
  };
  pconfig.inference = std::make_shared<core::EmpiricalPropensityModel>(
      2, std::vector<std::size_t>{});
  pconfig.estimator = std::make_shared<core::IpsEstimator>();
  pconfig.diagnostics_warnings = false;

  const std::vector<core::PolicyPtr> candidates{
      std::make_shared<core::UniformRandomPolicy>(2),
      std::make_shared<core::ConstantPolicy>(2, 0),
      std::make_shared<core::FunctionPolicy>(
          2,
          [](const core::FeatureVector& x) { return x[0] <= x[1] ? 0u : 1u; },
          "least-loaded"),
  };
  const pipeline::HarvestReport report = pipeline::evaluate_candidates(
      logged.log.roundtrip(), pconfig, candidates);
  sig.push_back(report.min_propensity);
  sig.push_back(report.eq1_width);
  for (const auto& candidate : report.candidates) {
    push_estimate(sig, candidate.estimate);
    sig.push_back(candidate.diagnostics.ess);
  }
  return sig;
}

/// Cache scenario: eviction harvesting + CB eviction model coefficients.
std::vector<double> run_cache_scenario() {
  std::vector<double> sig;
  cache::BigSmallWorkload workload({});
  cache::CacheConfig config = cache::table3_config(workload);
  config.num_requests = 30000;
  config.warmup_requests = 5000;
  util::Rng rng(31);
  cache::RandomEvictor evictor;
  const cache::CacheResult result =
      cache::run_cache(config, workload, evictor, rng);
  sig.push_back(result.hit_rate);

  const cache::EvictionHarvest harvest = cache::harvest_evictions(
      result.log, config.eviction_samples, /*horizon_seconds=*/60.0);
  sig.push_back(static_cast<double>(harvest.slot_data.size()));
  const core::RewardModelPtr model = cache::train_cb_eviction_model(harvest);
  // The model's predictions pin its coefficients.
  if (!harvest.victim_samples.empty()) {
    sig.push_back(model->predict(harvest.victim_samples.front().first, 0));
  }
  return sig;
}

/// Design scenario: the full plan -> serve closed loop. The planner's
/// parallel cost accumulation feeds a planned snapshot that serves a fixed
/// context stream; both the emitted plan and every logged propensity enter
/// the signature.
std::vector<double> run_design_scenario() {
  std::vector<double> sig;
  util::Rng rng(71);
  const core::FullFeedbackDataset env = testing::make_environment(2500, rng);
  const core::EpsilonGreedyPolicy logging(
      std::make_shared<core::ConstantPolicy>(3, 1), 0.4);
  const core::ExplorationDataset exp = env.simulate_exploration(logging, rng);
  const std::vector<core::PolicyPtr> candidates{
      std::make_shared<core::ConstantPolicy>(3, 0),
      std::make_shared<core::UniformRandomPolicy>(3),
  };
  const core::RidgeRewardModel model = core::fit_ridge(exp, 1.0, true);
  const design::PlannerReport report = design::plan_logging(
      exp, candidates, model, {0.0, 1.0, 0.5, 0.0, 1.0, -1.0}, 1, {});
  for (const double q : report.plan.distributions) sig.push_back(q);
  sig.push_back(report.planned_objective);
  sig.push_back(report.baseline_objective);
  sig.push_back(report.planned_regret);
  sig.push_back(report.residual_variance);

  // Execute the plan over a fixed stream; the logged propensities must be
  // exactly the plan's probabilities, so they pin both the solve and the
  // serving-side stratum arithmetic.
  serve::DecisionService service(
      {.num_actions = 3, .dim = 1, .log_capacity = 1 << 12, .seed = 515},
      serve::PolicySnapshot::planned(
          1, 3, 1, std::vector<double>(report.plan.reference_weights),
          std::vector<double>(report.plan.distributions)));
  serve::Decider& decider = service.add_decider();
  util::Rng ctx_rng(72);
  for (int i = 0; i < 1500; ++i) {
    const double x = ctx_rng.uniform();
    const serve::Decision d = decider.decide(std::span<const double>(&x, 1));
    decider.log_reward(0.1 * static_cast<double>(d.action) + 0.5 * x);
  }
  service.drain([&sig](const serve::DecisionRecord& rec) {
    sig.push_back(static_cast<double>(rec.action));
    sig.push_back(rec.propensity);
    sig.push_back(rec.reward);
  });
  service.reclaim_all();
  return sig;
}

std::vector<double> run_all_scenarios() {
  std::vector<double> sig = run_fleet_scenario();
  const std::vector<double> lb_sig = run_lb_scenario();
  const std::vector<double> cache_sig = run_cache_scenario();
  const std::vector<double> design_sig = run_design_scenario();
  sig.insert(sig.end(), lb_sig.begin(), lb_sig.end());
  sig.insert(sig.end(), cache_sig.begin(), cache_sig.end());
  sig.insert(sig.end(), design_sig.begin(), design_sig.end());
  return sig;
}

TEST(DeterminismTest, AllScenariosBitIdenticalAcrossThreadCounts) {
  par::set_default_threads(1);
  const std::vector<double> baseline = run_all_scenarios();
  EXPECT_GT(baseline.size(), 50u);
  for (std::size_t threads : {2u, 8u}) {
    par::set_default_threads(threads);
    const std::vector<double> run = run_all_scenarios();
    ASSERT_EQ(baseline.size(), run.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      // Exact comparison: bit-identity, not tolerance.
      EXPECT_EQ(baseline[i], run[i])
          << "signature[" << i << "] differs at threads=" << threads;
    }
  }
  par::set_default_threads(1);
}

// ---- Serve determinism: fixed-seed serving and retraining ----

/// Single-threaded serve of a fixed context stream: flattens every logged
/// tuple into a signature vector for exact run-to-run comparison.
std::vector<double> run_serve_scenario() {
  constexpr std::size_t kActions = 3;
  constexpr std::size_t kDim = 3;
  util::Rng wrng(61);
  std::vector<std::vector<double>> weights(kActions,
                                           std::vector<double>(kDim + 1));
  for (auto& row : weights) {
    for (auto& v : row) v = wrng.uniform(-1, 1);
  }
  serve::DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 13,
       .seed = 4242},
      serve::PolicySnapshot::from_weights(1, weights, 0.2));
  serve::Decider& decider = service.add_decider();
  util::Rng ctx_rng(62);
  util::Rng reward_rng(63);
  double ctx[kDim];
  for (int i = 0; i < 4000; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) ctx[d] = ctx_rng.uniform();
    decider.decide(std::span<const double>(ctx, kDim));
    decider.log_reward(reward_rng.uniform());
  }
  std::vector<double> sig;
  service.drain([&sig](const serve::DecisionRecord& rec) {
    sig.push_back(static_cast<double>(rec.action));
    sig.push_back(rec.propensity);
    sig.push_back(rec.reward);
    sig.push_back(static_cast<double>(rec.snapshot_id));
    for (std::uint32_t d = 0; d < rec.dim; ++d) {
      sig.push_back(rec.context[d]);
    }
  });
  return sig;
}

TEST(DeterminismTest, ServeFixedSeedBitIdenticalAcrossRuns) {
  const std::vector<double> first = run_serve_scenario();
  const std::vector<double> second = run_serve_scenario();
  ASSERT_GT(first.size(), 1000u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "signature[" << i << "] differs";
  }
}

/// Serves, retrains from the service's own logs, and returns the retrained
/// snapshot's exact bytes.
std::string retrain_snapshot_bytes() {
  constexpr std::size_t kActions = 3;
  constexpr std::size_t kDim = 2;
  serve::DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 13,
       .seed = 97},
      serve::PolicySnapshot::uniform(1, kActions, kDim));
  serve::Decider& decider = service.add_decider();
  serve::SnapshotTrainer trainer(
      service, {.epsilon = 0.1, .min_rows = 32, .reward_range = {0, 1}});
  util::Rng ctx_rng(98);
  double ctx[kDim];
  for (int i = 0; i < 3000; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) ctx[d] = ctx_rng.uniform();
    const serve::Decision dec =
        decider.decide(std::span<const double>(ctx, kDim));
    // Linear environment: action a pays a.x0-flavored reward.
    decider.log_reward(0.2 + 0.3 * ctx[0] * (dec.action + 1) /
                                 static_cast<double>(kActions));
  }
  trainer.collect();
  EXPECT_EQ(trainer.train_and_publish(), 2u);
  std::string bytes;
  {
    const serve::SnapshotRef ref = decider.snapshot();
    EXPECT_EQ(ref->id(), 2u);
    bytes = ref->serialize();
  }
  service.reclaim_all();
  return bytes;
}

TEST(DeterminismTest, RetrainedSnapshotBytesInvariantAcrossThreadCounts) {
  // The retrain-from-own-logs loop must publish byte-identical snapshots
  // whether the ridge fit runs on 1 or 8 threads.
  par::set_default_threads(1);
  const std::string baseline = retrain_snapshot_bytes();
  EXPECT_GT(baseline.size(), 24u);
  for (const std::size_t threads : {2u, 8u}) {
    par::set_default_threads(threads);
    EXPECT_EQ(baseline, retrain_snapshot_bytes()) << "threads=" << threads;
  }
  par::set_default_threads(1);
}

// ---- Golden CSV: miniature fig3 sweep, frozen at %.17g. ----

std::string render_mini_fig3() {
  const health::Fleet fleet((health::FleetConfig()));
  util::Rng rng(42);
  const core::FullFeedbackDataset train = fleet.generate_dataset(2000, rng);
  const core::UniformRandomPolicy uniform(
      health::FleetConfig().num_wait_actions);
  const core::ExplorationDataset train_exp =
      train.simulate_exploration(uniform, rng);
  const core::PolicyPtr policy = core::train_cb_policy(train_exp, {});
  const core::FullFeedbackDataset test_pool =
      fleet.generate_dataset(4000, rng);
  const double truth = test_pool.true_value(*policy);

  const core::IpsEstimator ips;
  constexpr std::size_t kSims = 40;
  std::ostringstream out;
  out << "n,median_rel_err,p05_rel_err,p95_rel_err\n";
  for (const std::size_t n : {400u, 900u}) {
    std::vector<double> rel_errors(kSims);
    // Same stream-derivation scheme as bench/fig3_ips_error.cpp: the
    // per-sim randomness depends only on (seed, n, sim index).
    const par::ShardedRng sim_rngs(util::derive_stream_seed(42, n));
    par::parallel_for(
        par::default_pool(), par::ShardPlan::per_item(kSims),
        [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            util::Rng sim_rng = sim_rngs.stream(s);
            core::FullFeedbackDataset subsample(test_pool.num_actions(),
                                                test_pool.reward_range());
            for (std::size_t i = 0; i < n; ++i) {
              subsample.add(
                  test_pool[sim_rng.uniform_index(test_pool.size())]);
            }
            const core::ExplorationDataset exp =
                subsample.simulate_exploration(uniform, sim_rng);
            rel_errors[s] =
                std::abs(ips.evaluate(exp, *policy).value - truth) / truth;
          }
        });
    char line[160];
    std::snprintf(line, sizeof(line), "%zu,%.17g,%.17g,%.17g\n", n,
                  stats::quantile(rel_errors, 0.5),
                  stats::quantile(rel_errors, 0.05),
                  stats::quantile(rel_errors, 0.95));
    out << line;
  }
  return out.str();
}

TEST(DeterminismTest, MiniFig3MatchesGoldenCsv) {
  const std::string golden_path =
      std::string(HARVEST_TEST_SOURCE_DIR) + "/golden/fig3_golden.csv";

  par::set_default_threads(8);
  const std::string rendered = render_mini_fig3();
  par::set_default_threads(1);
  const std::string rendered_seq = render_mini_fig3();
  // Parallel and sequential renderings must agree byte-for-byte.
  EXPECT_EQ(rendered, rendered_seq);

  if (std::getenv("HARVEST_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run once with HARVEST_REGEN_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), rendered)
      << "fig3 numbers drifted from the frozen golden; if the change is "
         "intentional, regenerate with HARVEST_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace harvest
