// Tests of the continuous deploy -> harvest -> retrain loop and of the
// chaos fault-injection hooks.
#include <gtest/gtest.h>

#include <memory>

#include "harvest/harvest.h"

namespace harvest::pipeline {
namespace {

/// Stationary synthetic environment: the loop should converge to the
/// context-dependent optimum within a few rounds.
TEST(ContinuousLoopTest, ConvergesOnStationaryEnvironment) {
  util::Rng rng(1);
  const DeployFn deploy = [](const core::PolicyPtr& policy,
                             std::size_t /*iteration*/, util::Rng& rng) {
    core::ExplorationDataset data(2, {0.0, 1.0});
    for (int i = 0; i < 1500; ++i) {
      const core::FeatureVector x{rng.uniform()};
      const std::vector<double> dist = policy->distribution(x);
      const auto a = static_cast<core::ActionId>(rng.categorical(dist));
      const double r = a == 0 ? x[0] : 1.0 - x[0];
      data.add({x, a, r, dist[a]});
    }
    return data;
  };

  LoopConfig config;
  config.iterations = 4;
  config.exploration_epsilon = 0.2;
  const LoopResult result = run_continuous_loop(
      config, std::make_shared<core::UniformRandomPolicy>(2), deploy, rng);

  ASSERT_EQ(result.rounds.size(), 4u);
  // Round 0 deploys ~uniform (mean ~0.5); later rounds should climb toward
  // the optimum (0.75 minus the exploration tax).
  EXPECT_NEAR(result.rounds[0].mean_reward, 0.5, 0.05);
  EXPECT_GT(result.rounds[3].mean_reward, result.rounds[0].mean_reward + 0.1);
  // The final greedy policy implements the crossover rule.
  util::Rng tmp(0);
  EXPECT_EQ(result.final_policy->act(core::FeatureVector{0.9}, tmp), 0u);
  EXPECT_EQ(result.final_policy->act(core::FeatureVector{0.1}, tmp), 1u);
}

/// Drifting environment (A2 violation): the optimal action flips halfway.
/// A windowed loop recovers; the pre-drift policy would be pessimal.
TEST(ContinuousLoopTest, WindowedLoopTracksDrift) {
  util::Rng rng(2);
  const DeployFn deploy = [](const core::PolicyPtr& policy,
                             std::size_t iteration, util::Rng& rng) {
    const bool flipped = iteration >= 3;
    core::ExplorationDataset data(2, {0.0, 1.0});
    for (int i = 0; i < 1500; ++i) {
      const core::FeatureVector x{rng.uniform()};
      const std::vector<double> dist = policy->distribution(x);
      const auto a = static_cast<core::ActionId>(rng.categorical(dist));
      const bool a_is_good = flipped ? a == 1 : a == 0;
      const double r = a_is_good ? 0.8 : 0.2;
      data.add({x, a, r, dist[a]});
    }
    return data;
  };

  LoopConfig config;
  config.iterations = 6;
  config.exploration_epsilon = 0.2;
  config.window = 1;  // forget everything but the last round
  const LoopResult result = run_continuous_loop(
      config, std::make_shared<core::UniformRandomPolicy>(2), deploy, rng);

  // Immediately after the drift (round 3) the deployed policy is stale and
  // collapses; by round 5 the loop has recovered.
  EXPECT_LT(result.rounds[3].mean_reward, 0.4);
  EXPECT_GT(result.rounds[5].mean_reward, 0.6);
}

TEST(ContinuousLoopTest, Validation) {
  util::Rng rng(3);
  const DeployFn noop = [](const core::PolicyPtr&, std::size_t,
                           util::Rng&) {
    return core::ExplorationDataset(2, {0.0, 1.0});
  };
  auto uniform = std::make_shared<core::UniformRandomPolicy>(2);
  EXPECT_THROW(run_continuous_loop({}, nullptr, noop, rng),
               std::invalid_argument);
  EXPECT_THROW(run_continuous_loop({}, uniform, nullptr, rng),
               std::invalid_argument);
  LoopConfig zero;
  zero.iterations = 0;
  EXPECT_THROW(run_continuous_loop(zero, uniform, noop, rng),
               std::invalid_argument);
  // Empty harvest is a runtime error.
  EXPECT_THROW(run_continuous_loop({}, uniform, noop, rng),
               std::runtime_error);
}

TEST(FaultInjectionTest, DegradesAndRecovers) {
  lb::Server server(lb::ServerConfig{0.2, 0.02, 0.0, 10.0});
  EXPECT_DOUBLE_EQ(server.latency_for(5), 0.3);
  server.set_degradation(3.0);
  EXPECT_DOUBLE_EQ(server.latency_for(5), 0.9);
  server.set_degradation(1.0);
  EXPECT_DOUBLE_EQ(server.latency_for(5), 0.3);
  EXPECT_THROW(server.set_degradation(0.5), std::invalid_argument);
}

TEST(FaultInjectionTest, FaultsAppearInLogAndWidenCoverage) {
  lb::LbConfig config = lb::fig5_config();
  config.num_requests = 12000;
  config.warmup_requests = 1000;
  config.faults.rate_per_second = 0.05;
  config.faults.duration_seconds = 30.0;
  config.faults.slowdown = 3.0;

  util::Rng rng(4);
  lb::RandomRouter router(2);
  const lb::LbResult with_faults = lb::run_lb(config, router, rng);

  std::size_t fault_records = 0;
  double max_conns_faulty = 0;
  for (const auto& rec : with_faults.log.records()) {
    if (rec.event == "fault") ++fault_records;
    if (rec.event == "route") {
      max_conns_faulty = std::max(
          max_conns_faulty, std::max(rec.number("conns0").value_or(0),
                                     rec.number("conns1").value_or(0)));
    }
  }
  EXPECT_GT(fault_records, 0u);

  config.faults.rate_per_second = 0.0;
  util::Rng rng2(4);
  lb::RandomRouter router2(2);
  const lb::LbResult without = lb::run_lb(config, router2, rng2);
  double max_conns_clean = 0;
  for (const auto& rec : without.log.records()) {
    if (rec.event != "route") continue;
    max_conns_clean = std::max(
        max_conns_clean, std::max(rec.number("conns0").value_or(0),
                                  rec.number("conns1").value_or(0)));
  }
  // The §5 claim: randomized failures generate broader exploration — the
  // logged context space reaches load levels normal operation never sees.
  EXPECT_GT(max_conns_faulty, 1.3 * max_conns_clean);
}

}  // namespace
}  // namespace harvest::pipeline
