// End-to-end tests of the 3-step harvesting pipeline on synthetic logs.
#include <gtest/gtest.h>

#include <memory>

#include "harvest/harvest.h"

namespace harvest::pipeline {
namespace {

/// A synthetic production log: 2 actions, context-free logging policy with
/// p(a=0) = 0.7, reward depends on (context, action).
logs::LogStore make_log(std::size_t n, util::Rng& rng) {
  logs::LogStore log;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform();
    const core::ActionId a = rng.bernoulli(0.7) ? 0 : 1;
    const double r = (a == 0 ? x : 1.0 - x) + rng.normal(0, 0.02);
    logs::Record rec;
    rec.time = static_cast<double>(i);
    rec.event = "decide";
    rec.set("x", x);
    rec.set("a", static_cast<std::int64_t>(a));
    rec.set("r", r);
    log.append(std::move(rec));
  }
  return log;
}

PipelineConfig make_config() {
  PipelineConfig config;
  config.spec.decision_event = "decide";
  config.spec.context_fields = {"x"};
  config.spec.action_field = "a";
  config.spec.reward_field = "r";
  config.spec.num_actions = 2;
  config.spec.reward_range = {-0.2, 1.2};
  config.spec.reward_transform = [](double r) { return r; };
  config.inference = std::make_shared<core::EmpiricalPropensityModel>(
      2, std::vector<std::size_t>{});
  config.estimator = std::make_shared<core::IpsEstimator>();
  return config;
}

TEST(PipelineTest, EvaluateCandidatesEndToEnd) {
  util::Rng rng(1);
  const logs::LogStore log = make_log(20000, rng);
  const PipelineConfig config = make_config();

  std::vector<core::PolicyPtr> candidates{
      std::make_shared<core::ConstantPolicy>(2, 0),
      std::make_shared<core::ConstantPolicy>(2, 1),
      std::make_shared<core::FunctionPolicy>(
          2, [](const core::FeatureVector& x) { return x[0] > 0.5 ? 0u : 1u; },
          "oracle"),
  };

  core::ExplorationDataset harvested(1, {});
  const HarvestReport report =
      evaluate_candidates(log.roundtrip(), config, candidates, &harvested);

  EXPECT_EQ(report.decisions_harvested, 20000u);
  EXPECT_EQ(report.decisions_dropped, 0u);
  EXPECT_EQ(harvested.size(), 20000u);
  // Inferred propensities near (0.7, 0.3).
  EXPECT_NEAR(report.min_propensity, 0.3, 0.02);

  ASSERT_EQ(report.candidates.size(), 3u);
  // True values: const-0 -> 0.5, const-1 -> 0.5, oracle -> 0.75.
  EXPECT_NEAR(report.candidates[0].estimate.value, 0.5, 0.05);
  EXPECT_NEAR(report.candidates[1].estimate.value, 0.5, 0.05);
  EXPECT_NEAR(report.candidates[2].estimate.value, 0.75, 0.05);
  // The oracle wins offline, with a separating interval.
  EXPECT_GT(report.candidates[2].estimate.normal_ci.lo,
            report.candidates[0].estimate.normal_ci.hi);
  EXPECT_GT(report.eq1_width, 0.0);
  EXPECT_GT(report.max_class_size, 0.0);
}

TEST(PipelineTest, OptimizePolicyLearnsTheOracleShape) {
  util::Rng rng(2);
  const logs::LogStore log = make_log(20000, rng);
  const core::PolicyPtr learned =
      optimize_policy(log.roundtrip(), make_config());
  // The learned greedy policy should pick action 0 for high x, 1 for low x.
  util::Rng tmp(0);
  EXPECT_EQ(learned->act(core::FeatureVector{0.9}, tmp), 0u);
  EXPECT_EQ(learned->act(core::FeatureVector{0.1}, tmp), 1u);
}

TEST(PipelineTest, MissingEstimatorThrows) {
  util::Rng rng(3);
  const logs::LogStore log = make_log(100, rng);
  PipelineConfig config = make_config();
  config.estimator = nullptr;
  EXPECT_THROW(evaluate_candidates(log, config, {}), std::invalid_argument);
}

TEST(PipelineTest, EmptyLogThrows) {
  const logs::LogStore log;
  EXPECT_THROW(evaluate_candidates(log, make_config(), {}),
               std::runtime_error);
}

// ---- Scenario-level shape assertions at reduced scale (fast ctest). ----

TEST(ScenarioShapeTest, LoadBalancingOpeBreaksForSendTo1) {
  lb::LbConfig config = lb::fig5_config();
  config.num_requests = 8000;
  config.warmup_requests = 1000;
  util::Rng rng(4);
  lb::RandomRouter logging(2);
  const lb::LbResult logged = lb::run_lb(config, logging, rng);

  const core::IpsEstimator ips;
  const core::ConstantPolicy send1(2, 0);
  const double offline = lb::reward_to_latency(
      ips.evaluate(logged.exploration, send1).value, config.latency_cap);

  lb::SendToRouter send1_router(2, 0);
  util::Rng rng2(4);
  const double online = lb::run_lb(config, send1_router, rng2).mean_latency;

  // The paper's inversion: offline says "great", online is much worse.
  EXPECT_LT(offline, logged.mean_latency);
  EXPECT_GT(online, 1.3 * offline);
}

TEST(ScenarioShapeTest, LoadBalancingCbBeatsLeastLoadedOnline) {
  lb::LbConfig config = lb::fig5_config();
  config.num_requests = 15000;
  config.warmup_requests = 2000;
  util::Rng rng(5);
  lb::RandomRouter logging(2);
  const lb::LbResult logged = lb::run_lb(config, logging, rng);
  const core::PolicyPtr cb = core::train_cb_policy(logged.exploration, {});

  lb::CbRouter cb_router(cb);
  util::Rng rng2(6);
  const double online_cb = lb::run_lb(config, cb_router, rng2).mean_latency;
  lb::LeastLoadedRouter ll(2);
  util::Rng rng3(6);
  const double online_ll = lb::run_lb(config, ll, rng3).mean_latency;
  EXPECT_LT(online_cb, online_ll);
}

TEST(ScenarioShapeTest, CachingOnlySizeAwarePolicyBeatsRandom) {
  cache::BigSmallWorkload workload({});
  cache::CacheConfig config = cache::table3_config(workload);
  config.num_requests = 60000;
  config.warmup_requests = 10000;
  config.keep_log = false;

  auto hitrate = [&](cache::Evictor& evictor, std::uint64_t seed) {
    util::Rng rng(seed);
    return cache::run_cache(config, workload, evictor, rng).hit_rate;
  };
  cache::RandomEvictor random_evictor;
  cache::LruEvictor lru;
  cache::FreqSizeEvictor fs;
  const double hr_random = hitrate(random_evictor, 7);
  const double hr_lru = hitrate(lru, 7);
  const double hr_fs = hitrate(fs, 7);

  EXPECT_NEAR(hr_lru, hr_random, 0.04);   // LRU ~ random
  EXPECT_GT(hr_fs, hr_random + 0.03);     // size-aware wins clearly
}

TEST(ScenarioShapeTest, HealthIpsErrorShrinksWithN) {
  const health::Fleet fleet((health::FleetConfig()));
  util::Rng rng(8);
  const core::FullFeedbackDataset pool = fleet.generate_dataset(6000, rng);
  const core::UniformRandomPolicy logging(9);
  const core::ExplorationDataset train_exp =
      pool.simulate_exploration(logging, rng);
  const core::PolicyPtr policy = core::train_cb_policy(train_exp, {});
  const double truth = pool.true_value(*policy);

  const core::IpsEstimator ips;
  auto mean_abs_error = [&](std::size_t n, std::size_t reps) {
    double total = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      core::FullFeedbackDataset subset(pool.num_actions(),
                                       pool.reward_range());
      for (std::size_t i = 0; i < n; ++i) {
        subset.add(pool[rng.uniform_index(pool.size())]);
      }
      const core::ExplorationDataset exp =
          subset.simulate_exploration(logging, rng);
      total += std::abs(ips.evaluate(exp, *policy).value - truth);
    }
    return total / static_cast<double>(reps);
  };
  EXPECT_LT(mean_abs_error(4000, 30), mean_abs_error(250, 30));
}

TEST(ScenarioShapeTest, HealthCbApproachesSupervisedSkyline) {
  const health::Fleet fleet((health::FleetConfig()));
  util::Rng rng(9);
  const core::FullFeedbackDataset pool = fleet.generate_dataset(12000, rng);
  const core::FullFeedbackDataset test = fleet.generate_dataset(4000, rng);
  const core::PolicyPtr supervised = core::train_supervised_policy(pool, {});
  const double skyline = test.true_value(*supervised);

  const core::UniformRandomPolicy logging(9);
  const core::ExplorationDataset exp =
      pool.simulate_exploration(logging, rng);
  const core::PolicyPtr cb = core::train_cb_policy(exp, {});
  // Fig. 4 shape: CB with 12k exploration points sits close to the skyline.
  EXPECT_GT(test.true_value(*cb), 0.93 * skyline);
}

}  // namespace
}  // namespace harvest::pipeline
