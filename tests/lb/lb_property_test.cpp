// Parameterized invariants of the LB simulation across every router type:
// request conservation, valid exploration tuples, and propensity/behaviour
// consistency (logged propensities must match realized action frequencies).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/policies/basic.h"
#include "lb/frontdoor.h"
#include "lb/lb_sim.h"
#include "lb/routers.h"
#include "testing/fixtures.h"

namespace harvest::lb {
namespace {

using harvest::testing::make_router;

class LbRouterInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(LbRouterInvariants, ConservationAndValidExploration) {
  LbConfig config = fig5_config();
  config.num_requests = 4000;
  config.warmup_requests = 400;
  RouterPtr router = make_router(GetParam());
  util::Rng rng(77);
  const LbResult result = run_lb(config, *router, rng);

  // Conservation: every measured request was routed exactly once.
  std::size_t total = 0;
  for (std::size_t c : result.per_server_requests) total += c;
  EXPECT_EQ(total, result.measured_requests);
  EXPECT_EQ(result.measured_requests,
            config.num_requests - config.warmup_requests);
  EXPECT_EQ(result.log.size(), result.measured_requests);

  // Every harvested tuple is well-formed.
  for (const auto& pt : result.exploration.points()) {
    EXPECT_LT(pt.action, 2u);
    EXPECT_GE(pt.reward, 0.0);
    EXPECT_LE(pt.reward, 1.0);
    EXPECT_GT(pt.propensity, 0.0);
    EXPECT_LE(pt.propensity, 1.0);
  }

  // Latencies are within the physical range of the latency law.
  EXPECT_GE(result.mean_latency, config.servers[0].base_latency);
  EXPECT_LE(result.p99_latency, config.servers[0].latency_cap + 1e-9);
}

TEST_P(LbRouterInvariants, LoggedPropensitiesMatchBehaviourForRandomized) {
  const std::string kind = GetParam();
  if (kind != "random" && kind != "weighted") {
    GTEST_SKIP() << "propensity/frequency identity only for stationary "
                    "context-free randomized routers";
  }
  LbConfig config = fig5_config();
  config.num_requests = 20000;
  config.warmup_requests = 1000;
  RouterPtr router = make_router(kind);
  util::Rng rng(78);
  const LbResult result = run_lb(config, *router, rng);

  // Realized per-action frequency must match the (constant) logged
  // propensity of that action.
  std::map<core::ActionId, std::size_t> counts;
  std::map<core::ActionId, double> propensity;
  for (const auto& pt : result.exploration.points()) {
    ++counts[pt.action];
    propensity[pt.action] = pt.propensity;
  }
  for (const auto& [action, count] : counts) {
    const double freq =
        static_cast<double>(count) /
        static_cast<double>(result.exploration.size());
    EXPECT_NEAR(freq, propensity[action], 0.02) << "action " << action;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRouters, LbRouterInvariants,
                         ::testing::Values("random", "round-robin",
                                           "least-loaded", "send-to-1",
                                           "weighted", "epoch", "cb"));

}  // namespace
}  // namespace harvest::lb
