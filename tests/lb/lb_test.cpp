#include <gtest/gtest.h>

#include <memory>

#include "core/policies/basic.h"
#include "lb/frontdoor.h"
#include "lb/lb_sim.h"
#include "lb/routers.h"
#include "lb/server.h"

namespace harvest::lb {
namespace {

TEST(ServerTest, LatencyLawLinearInConnections) {
  Server server(ServerConfig{0.2, 0.05, 0.0, 10.0});
  EXPECT_DOUBLE_EQ(server.latency_for(0), 0.2);
  EXPECT_DOUBLE_EQ(server.latency_for(4), 0.4);
  EXPECT_DOUBLE_EQ(server.latency_if_admitted(), 0.25);
  const double lat = server.admit();
  EXPECT_DOUBLE_EQ(lat, 0.25);
  EXPECT_EQ(server.open_connections(), 1u);
  server.release();
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_THROW(server.release(), std::logic_error);
}

TEST(ServerTest, LatencyCapped) {
  Server server(ServerConfig{0.2, 1.0, 0.0, 3.0});
  EXPECT_DOUBLE_EQ(server.latency_for(100), 3.0);
}

TEST(ServerTest, RejectsBadConfig) {
  EXPECT_THROW(Server(ServerConfig{-1.0, 0.1, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Server(ServerConfig{0.1, 0.1, 0.0, 0.0}), std::invalid_argument);
}

RoutingContext ctx_with(std::vector<std::size_t> conns) {
  RoutingContext ctx;
  ctx.open_connections = std::move(conns);
  return ctx;
}

TEST(RandomRouterTest, UniformChoicesAndPropensities) {
  RandomRouter router(4);
  util::Rng rng(1);
  std::vector<int> counts(4, 0);
  const auto ctx = ctx_with({0, 0, 0, 0});
  for (int i = 0; i < 40000; ++i) ++counts[router.route(ctx, rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
  for (double p : router.distribution(ctx)) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(RoundRobinRouterTest, CyclesThroughServers) {
  RoundRobinRouter router(3);
  util::Rng rng(2);
  const auto ctx = ctx_with({0, 0, 0});
  EXPECT_EQ(router.route(ctx, rng), 0u);
  EXPECT_EQ(router.route(ctx, rng), 1u);
  EXPECT_EQ(router.route(ctx, rng), 2u);
  EXPECT_EQ(router.route(ctx, rng), 0u);
}

TEST(LeastLoadedRouterTest, PicksMinimumWithLowTieBreak) {
  LeastLoadedRouter router(3);
  util::Rng rng(3);
  EXPECT_EQ(router.route(ctx_with({5, 2, 9}), rng), 1u);
  EXPECT_EQ(router.route(ctx_with({4, 4, 9}), rng), 0u);
  const auto d = router.distribution(ctx_with({5, 2, 9}));
  EXPECT_DOUBLE_EQ(d[1], 1.0);
}

TEST(SendToRouterTest, AlwaysTarget) {
  SendToRouter router(2, 0);
  util::Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.route(ctx_with({100, 0}), rng), 0u);
  }
  EXPECT_EQ(router.name(), "send-to-1");
  EXPECT_THROW(SendToRouter(2, 2), std::invalid_argument);
}

TEST(WeightedRandomRouterTest, HonorsWeights) {
  WeightedRandomRouter router({1.0, 3.0});
  util::Rng rng(5);
  int second = 0;
  const auto ctx = ctx_with({0, 0});
  for (int i = 0; i < 20000; ++i) second += router.route(ctx, rng) == 1;
  EXPECT_NEAR(second / 20000.0, 0.75, 0.02);
}

TEST(EpochWeightedRandomRouterTest, WeightsPersistWithinEpoch) {
  EpochWeightedRandomRouter router(3, 100, 0.5);
  util::Rng rng(6);
  const auto ctx = ctx_with({0, 0, 0});
  router.route(ctx, rng);  // triggers redraw
  const auto d1 = router.distribution(ctx);
  for (int i = 0; i < 50; ++i) router.route(ctx, rng);
  const auto d2 = router.distribution(ctx);
  EXPECT_EQ(d1, d2);  // same epoch, same weights
  double sum = 0;
  for (double p : d1) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EpochWeightedRandomRouterTest, SkewedEpochsAppear) {
  // Low concentration must produce epochs where one server dominates —
  // the richer exploration §5 asks for.
  EpochWeightedRandomRouter router(2, 10, 0.3);
  util::Rng rng(7);
  const auto ctx = ctx_with({0, 0});
  double max_weight_seen = 0;
  double min_weight_seen = 1;
  for (int e = 0; e < 200; ++e) {
    for (int i = 0; i < 10; ++i) router.route(ctx, rng);
    const auto d = router.distribution(ctx);
    max_weight_seen = std::max({max_weight_seen, d[0], d[1]});
    min_weight_seen = std::min({min_weight_seen, d[0], d[1]});
  }
  // Heavily skewed epochs appear, but the propensity floor (default 0.05)
  // keeps importance weights bounded.
  EXPECT_GT(max_weight_seen, 0.90);
  EXPECT_GE(min_weight_seen, 0.05 - 1e-12);
}

TEST(EpochWeightedRandomRouterTest, RejectsBadMinWeight) {
  EXPECT_THROW(EpochWeightedRandomRouter(2, 10, 0.3, 0.6),
               std::invalid_argument);
  EXPECT_THROW(EpochWeightedRandomRouter(2, 10, 0.3, -0.1),
               std::invalid_argument);
}

TEST(CbRouterTest, FollowsPolicy) {
  auto policy = std::make_shared<core::FunctionPolicy>(
      2,
      [](const core::FeatureVector& x) { return x[0] <= x[1] ? 0u : 1u; },
      "least-conns-as-policy");
  CbRouter router(policy);
  util::Rng rng(8);
  EXPECT_EQ(router.route(ctx_with({3, 7}), rng), 0u);
  EXPECT_EQ(router.route(ctx_with({9, 7}), rng), 1u);
}

LbConfig small_config() {
  LbConfig config = fig5_config();
  config.num_requests = 4000;
  config.warmup_requests = 500;
  return config;
}

TEST(LbSimTest, RequestConservation) {
  LbConfig config = small_config();
  RandomRouter router(2);
  util::Rng rng(9);
  const LbResult result = run_lb(config, router, rng);
  EXPECT_EQ(result.measured_requests,
            config.num_requests - config.warmup_requests);
  std::size_t total = 0;
  for (std::size_t c : result.per_server_requests) total += c;
  EXPECT_EQ(total, result.measured_requests);
  EXPECT_EQ(result.log.size(), result.measured_requests);
  EXPECT_EQ(result.exploration.size(), result.measured_requests);
}

TEST(LbSimTest, ExplorationPropensitiesMatchRouter) {
  LbConfig config = small_config();
  RandomRouter router(2);
  util::Rng rng(10);
  const LbResult result = run_lb(config, router, rng);
  for (const auto& pt : result.exploration.points()) {
    EXPECT_DOUBLE_EQ(pt.propensity, 0.5);
    EXPECT_GE(pt.reward, 0.0);
    EXPECT_LE(pt.reward, 1.0);
  }
}

TEST(LbSimTest, LeastLoadedBeatsRandomOnline) {
  LbConfig config = small_config();
  config.num_requests = 12000;
  util::Rng rng1(11), rng2(11);
  RandomRouter random_router(2);
  LeastLoadedRouter ll_router(2);
  const double random_lat = run_lb(config, random_router, rng1).mean_latency;
  const double ll_lat = run_lb(config, ll_router, rng2).mean_latency;
  EXPECT_LT(ll_lat, random_lat);
}

TEST(LbSimTest, SendToOneOverloadsOnline) {
  LbConfig config = small_config();
  config.num_requests = 12000;
  util::Rng rng1(12), rng2(12);
  RandomRouter random_router(2);
  SendToRouter send1(2, 0);
  const double random_lat = run_lb(config, random_router, rng1).mean_latency;
  const double send1_lat = run_lb(config, send1, rng2).mean_latency;
  // The Table 2 inversion: online, send-to-1 is far worse than random.
  EXPECT_GT(send1_lat, 1.2 * random_lat);
}

TEST(LbSimTest, HeavyRequestsPayThePenaltyOnServer2) {
  // With heavy_fraction = 1 and all traffic on server 2, every request pays
  // the heavy penalty; with heavy_fraction = 0, none do.
  LbConfig config = fig5_config();
  config.num_requests = 3000;
  config.warmup_requests = 300;
  config.arrival_rate = 2.0;  // light load isolates the base + penalty
  auto mean_latency = [&](double heavy_fraction) {
    config.heavy_fraction = heavy_fraction;
    SendToRouter to2(2, 1);
    util::Rng rng(21);
    return run_lb(config, to2, rng).mean_latency;
  };
  const double light = mean_latency(0.0);
  const double heavy = mean_latency(1.0);
  // Slightly above the configured penalty: slower requests also raise the
  // open-connection count (second-order queueing feedback).
  EXPECT_NEAR(heavy - light, config.servers[1].heavy_penalty, 0.02);
  EXPECT_GE(heavy - light, config.servers[1].heavy_penalty - 1e-9);
}

TEST(LbSimTest, HeavyFlagLoggedAndInContext) {
  LbConfig config = fig5_config();
  config.num_requests = 2000;
  config.warmup_requests = 200;
  config.heavy_fraction = 0.5;
  RandomRouter router(2);
  util::Rng rng(22);
  const LbResult result = run_lb(config, router, rng);
  std::size_t heavy_logged = 0;
  for (const auto& rec : result.log.records()) {
    heavy_logged += rec.integer("heavy").value_or(0) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heavy_logged) / result.log.size(), 0.5,
              0.05);
  // The context feature vector carries the flag as its last entry.
  std::size_t heavy_in_context = 0;
  for (const auto& pt : result.exploration.points()) {
    ASSERT_EQ(pt.context.size(), 3u);
    heavy_in_context += pt.context[2] == 1.0 ? 1 : 0;
  }
  EXPECT_EQ(heavy_in_context, heavy_logged);
}

TEST(LbSimTest, EpochRouterPropensitiesMatchEpochWeights) {
  LbConfig config = fig5_config();
  config.num_requests = 3000;
  config.warmup_requests = 300;
  EpochWeightedRandomRouter router(2, 100, 0.5);
  util::Rng rng(23);
  const LbResult result = run_lb(config, router, rng);
  // Every logged propensity is a valid epoch weight: within [0.05, 0.95]
  // (the floor) and the per-point propensity matches the chosen server's
  // weight, so p in {w0, w1} with w0 + w1 = 1 — check the floor bound here.
  for (const auto& pt : result.exploration.points()) {
    EXPECT_GE(pt.propensity, 0.05 - 1e-9);
    EXPECT_LE(pt.propensity, 0.95 + 1e-9);
  }
  EXPECT_LT(result.exploration.min_propensity(), 0.45);  // epochs do skew
}

TEST(LbSimTest, RewardLatencyMapping) {
  EXPECT_DOUBLE_EQ(latency_to_reward(0.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(latency_to_reward(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(latency_to_reward(5.0, 2.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(reward_to_latency(latency_to_reward(0.7, 2.0), 2.0), 0.7);
}

TEST(LbSimTest, Validation) {
  LbConfig config;  // no servers
  RandomRouter router(2);
  util::Rng rng(13);
  EXPECT_THROW(run_lb(config, router, rng), std::invalid_argument);
  config = small_config();
  RandomRouter wrong(3);
  EXPECT_THROW(run_lb(config, wrong, rng), std::invalid_argument);
  config.warmup_requests = config.num_requests;
  EXPECT_THROW(run_lb(config, router, rng), std::invalid_argument);
}

TEST(FrontDoorTest, PartitionValidation) {
  auto make = [](std::vector<std::vector<std::size_t>> clusters) {
    std::vector<RouterPtr> locals;
    for (const auto& c : clusters) {
      locals.push_back(std::make_unique<RandomRouter>(c.size()));
    }
    return HierarchicalRouter(
        clusters, std::make_unique<RandomRouter>(clusters.size()),
        std::move(locals));
  };
  EXPECT_NO_THROW(make({{0, 1}, {2, 3}}));
  EXPECT_THROW(make({{0, 1}, {1, 2}}), std::invalid_argument);  // overlap
  EXPECT_THROW(make({{0, 1}, {}}), std::invalid_argument);      // empty
}

TEST(FrontDoorTest, DistributionIsProductOfLevels) {
  std::vector<RouterPtr> locals;
  locals.push_back(std::make_unique<RandomRouter>(2));
  locals.push_back(std::make_unique<RandomRouter>(3));
  HierarchicalRouter fd({{0, 1}, {2, 3, 4}},
                        std::make_unique<RandomRouter>(2), std::move(locals));
  const auto d = fd.distribution(ctx_with({0, 0, 0, 0, 0}));
  ASSERT_EQ(d.size(), 5u);
  EXPECT_NEAR(d[0], 0.25, 1e-12);      // 1/2 * 1/2
  EXPECT_NEAR(d[2], 1.0 / 6.0, 1e-12); // 1/2 * 1/3
  double sum = 0;
  for (double p : d) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FrontDoorTest, EdgeContextAggregatesClusterLoads) {
  std::vector<RouterPtr> locals;
  locals.push_back(std::make_unique<RandomRouter>(2));
  locals.push_back(std::make_unique<RandomRouter>(2));
  HierarchicalRouter fd({{0, 1}, {2, 3}}, std::make_unique<RandomRouter>(2),
                        std::move(locals));
  const auto edge = fd.edge_context(ctx_with({1, 2, 3, 4}));
  ASSERT_EQ(edge.open_connections.size(), 2u);
  EXPECT_EQ(edge.open_connections[0], 3u);
  EXPECT_EQ(edge.open_connections[1], 7u);
  EXPECT_EQ(fd.cluster_of(3), 1u);
  EXPECT_DOUBLE_EQ(fd.edge_epsilon(), 0.5);
}

TEST(FrontDoorTest, RoutesWithinChosenCluster) {
  std::vector<RouterPtr> locals;
  locals.push_back(std::make_unique<LeastLoadedRouter>(2));
  locals.push_back(std::make_unique<LeastLoadedRouter>(2));
  HierarchicalRouter fd({{0, 1}, {2, 3}},
                        std::make_unique<LeastLoadedRouter>(2),
                        std::move(locals));
  util::Rng rng(14);
  // Cluster 0 total load 10, cluster 1 total load 2 -> edge picks cluster 1;
  // within it, server 3 has fewer conns.
  EXPECT_EQ(fd.route(ctx_with({5, 5, 2, 0}), rng), 3u);
}

TEST(FrontDoorTest, EvenClustersPartition) {
  const auto clusters = even_clusters(10, 3);
  ASSERT_EQ(clusters.size(), 3u);
  std::size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  EXPECT_EQ(total, 10u);
  EXPECT_THROW(even_clusters(2, 5), std::invalid_argument);
}

TEST(FrontDoorTest, RunsInsideLbSim) {
  LbConfig config;
  config.servers.assign(4, ServerConfig{0.2, 0.02, 0.0, 2.0});
  config.arrival_rate = 40;
  config.num_requests = 3000;
  config.warmup_requests = 300;
  std::vector<RouterPtr> locals;
  locals.push_back(std::make_unique<RandomRouter>(2));
  locals.push_back(std::make_unique<RandomRouter>(2));
  HierarchicalRouter fd({{0, 1}, {2, 3}}, std::make_unique<RandomRouter>(2),
                        std::move(locals));
  util::Rng rng(15);
  const LbResult result = run_lb(config, fd, rng);
  EXPECT_EQ(result.measured_requests, 2700u);
  for (std::size_t c : result.per_server_requests) EXPECT_GT(c, 0u);
  // Harvested propensities are the two-level products (1/4 each here).
  EXPECT_DOUBLE_EQ(result.exploration.min_propensity(), 0.25);
}

}  // namespace
}  // namespace harvest::lb
