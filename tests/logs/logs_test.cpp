#include <gtest/gtest.h>

#include <sstream>

#include "logs/log_store.h"
#include "logs/lookahead.h"
#include "logs/record.h"
#include "logs/scavenger.h"

namespace harvest::logs {
namespace {

TEST(RecordTest, SerializeParseRoundtrip) {
  Record rec;
  rec.time = 12.5;
  rec.event = "route";
  rec.set("server", std::int64_t{1});
  rec.set("latency", 0.375);
  rec.set("label", "backend-a");
  const std::string line = serialize(rec);
  const auto parsed = parse(line);
  ASSERT_TRUE(parsed);
  EXPECT_DOUBLE_EQ(parsed->time, 12.5);
  EXPECT_EQ(parsed->event, "route");
  EXPECT_EQ(parsed->integer("server"), 1);
  EXPECT_DOUBLE_EQ(*parsed->number("latency"), 0.375);
  EXPECT_EQ(*parsed->text("label"), "backend-a");
}

TEST(RecordTest, TypedAccessorsHandleMissingAndMalformed) {
  Record rec;
  rec.set("x", "abc");
  EXPECT_FALSE(rec.number("x"));
  EXPECT_FALSE(rec.number("absent"));
  EXPECT_FALSE(rec.integer("x"));
  EXPECT_EQ(rec.text("absent"), nullptr);
}

TEST(RecordTest, SerializeRejectsUnsafeValues) {
  Record rec;
  rec.event = "e";
  rec.set("bad key", "v");
  EXPECT_THROW(serialize(rec), std::invalid_argument);
  Record rec2;
  rec2.event = "e";
  rec2.set("k", "has space");
  EXPECT_THROW(serialize(rec2), std::invalid_argument);
}

TEST(ParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(parse(""));
  EXPECT_FALSE(parse("ev=x"));           // missing t
  EXPECT_FALSE(parse("t=1.0"));          // missing ev
  EXPECT_FALSE(parse("t=abc ev=x"));     // bad time
  EXPECT_FALSE(parse("t=1 ev=x garbage"));  // token without '='
  EXPECT_TRUE(parse("t=1 ev=x"));
}

TEST(LogStoreTest, TextRoundtripPreservesEverything) {
  LogStore store;
  for (int i = 0; i < 5; ++i) {
    Record rec;
    rec.time = i * 1.5;
    rec.event = i % 2 == 0 ? "access" : "evict";
    rec.set("key", static_cast<std::int64_t>(i * 7));
    store.append(std::move(rec));
  }
  const LogStore copy = store.roundtrip();
  ASSERT_EQ(copy.size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_DOUBLE_EQ(copy[i].time, store[i].time);
    EXPECT_EQ(copy[i].event, store[i].event);
    EXPECT_EQ(copy[i].integer("key"), store[i].integer("key"));
  }
}

TEST(LogStoreTest, TornLinesAreCountedAndSkipped) {
  std::stringstream text;
  text << "t=1 ev=ok a=1\n";
  text << "t=2 ev=ok broken line here\n";  // tokens without '='
  text << "not a record at all\n";
  text << "t=3 ev=ok b=2\n";
  const auto [store, skipped] = LogStore::read_text(text);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(skipped, 2u);
}

TEST(LogStoreTest, ChunkedReaderHandlesLinesSplitAcrossChunks) {
  // A tiny chunk size forces every line to straddle chunk boundaries; the
  // carry buffer must reassemble them without loss.
  std::stringstream text;
  for (int i = 0; i < 50; ++i) {
    text << "t=" << i << " ev=ok key=value" << i << "\n";
  }
  ReadOptions options;
  options.chunk_bytes = 7;  // far smaller than any line
  const auto [store, stats] = LogStore::read_text_chunked(text, options);
  EXPECT_EQ(store.size(), 50u);
  EXPECT_EQ(stats.parsed, 50u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.lines_seen, 50u);
  EXPECT_GT(stats.chunks, 50u);  // many reads, bounded memory
  ASSERT_NE(store[49].text("key"), nullptr);
  EXPECT_EQ(*store[49].text("key"), "value49");
}

TEST(LogStoreTest, ChunkedReaderQuarantinesOversizedLines) {
  std::stringstream text;
  text << "t=1 ev=ok a=1\n";
  text << "t=2 ev=ok blob=" << std::string(5000, 'x') << "\n";
  text << "t=3 ev=ok b=2\n";
  ReadOptions options;
  options.chunk_bytes = 256;
  options.max_line_bytes = 1024;
  const auto [store, stats] = LogStore::read_text_chunked(text, options);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.parsed + stats.skipped(), stats.lines_seen);
}

TEST(LogStoreTest, ChunkedReaderHandlesMissingTrailingNewline) {
  std::stringstream text("t=1 ev=ok a=1\nt=2 ev=ok b=2");  // no final \n
  const auto [store, stats] = LogStore::read_text_chunked(text);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(stats.lines_seen, 2u);
}

TEST(LogStoreTest, ChunkedReaderRejectsZeroLimits) {
  std::stringstream text("t=1 ev=ok a=1\n");
  ReadOptions zero_chunk;
  zero_chunk.chunk_bytes = 0;
  EXPECT_THROW(LogStore::read_text_chunked(text, zero_chunk),
               std::invalid_argument);
  ReadOptions zero_line;
  zero_line.max_line_bytes = 0;
  EXPECT_THROW(LogStore::read_text_chunked(text, zero_line),
               std::invalid_argument);
}

ScavengeSpec basic_spec() {
  ScavengeSpec spec;
  spec.decision_event = "route";
  spec.context_fields = {"load0", "load1"};
  spec.action_field = "server";
  spec.reward_field = "latency";
  spec.reward_transform = [](double lat) { return 1.0 - lat; };
  spec.num_actions = 2;
  spec.reward_range = {0.0, 1.0};
  return spec;
}

Record route_record(double t, double l0, double l1, std::int64_t server,
                    double latency) {
  Record rec;
  rec.time = t;
  rec.event = "route";
  rec.set("load0", l0);
  rec.set("load1", l1);
  rec.set("server", server);
  rec.set("latency", latency);
  return rec;
}

TEST(ScavengerTest, ExtractsTuplesAndCountsDrops) {
  LogStore log;
  log.append(route_record(1, 3, 5, 0, 0.2));
  Record other;
  other.time = 1.5;
  other.event = "heartbeat";
  log.append(other);
  log.append(route_record(2, 4, 4, 1, 0.4));
  log.append(route_record(3, 1, 1, 7, 0.1));  // bad action id
  Record missing = route_record(4, 2, 2, 0, 0.3);
  missing.fields.erase("load1");
  log.append(missing);

  const ScavengeResult result = scavenge(log, basic_spec());
  EXPECT_EQ(result.records_seen, 5u);
  EXPECT_EQ(result.decisions_seen, 4u);
  EXPECT_EQ(result.data.size(), 2u);
  EXPECT_EQ(result.dropped_bad_action, 1u);
  EXPECT_EQ(result.dropped_missing_fields, 1u);
  EXPECT_DOUBLE_EQ(result.data[0].context[0], 3.0);
  EXPECT_DOUBLE_EQ(result.data[0].context[1], 5.0);
  EXPECT_EQ(result.data[1].action, 1u);
  EXPECT_NEAR(result.data[1].reward, 0.6, 1e-12);
  // No propensity field: placeholder 1.0 awaiting step-2 annotation.
  EXPECT_DOUBLE_EQ(result.data[0].propensity, 1.0);
}

TEST(ScavengerTest, ReadsPropensityFieldWhenConfigured) {
  LogStore log;
  Record rec = route_record(1, 0, 0, 0, 0.5);
  rec.set("p", 0.25);
  log.append(rec);
  ScavengeSpec spec = basic_spec();
  spec.propensity_field = "p";
  const ScavengeResult result = scavenge(log, spec);
  ASSERT_EQ(result.data.size(), 1u);
  EXPECT_DOUBLE_EQ(result.data[0].propensity, 0.25);
}

TEST(ScavengerTest, ClassifiesBadPropensitySeparatelyFromMissing) {
  // Regression: a present-but-out-of-range propensity used to be misfiled
  // under dropped_missing_fields.
  LogStore log;
  Record good = route_record(1, 0, 0, 0, 0.5);
  good.set("p", 0.25);
  log.append(good);
  Record absent = route_record(2, 0, 0, 0, 0.5);  // no p at all
  log.append(absent);
  Record zero = route_record(3, 0, 0, 0, 0.5);
  zero.set("p", 0.0);  // present but invalid
  log.append(zero);
  Record above_one = route_record(4, 0, 0, 0, 0.5);
  above_one.set("p", 1.7);  // present but invalid
  log.append(above_one);

  ScavengeSpec spec = basic_spec();
  spec.propensity_field = "p";
  const ScavengeResult result = scavenge(log, spec);
  EXPECT_EQ(result.data.size(), 1u);
  EXPECT_EQ(result.dropped_missing_fields, 1u);
  EXPECT_EQ(result.dropped_bad_propensity, 2u);
  EXPECT_EQ(result.total_dropped(), 3u);
  EXPECT_EQ(result.data.size() + result.total_dropped(),
            result.decisions_seen);
}

TEST(ScavengerTest, QuarantineCallbackSeesEveryDrop) {
  LogStore log;
  log.append(route_record(1, 3, 5, 0, 0.2));
  log.append(route_record(2, 1, 1, 9, 0.1));  // bad action
  std::vector<QuarantineClass> seen;
  ScavengeSpec spec = basic_spec();
  spec.on_quarantine = [&](QuarantineClass cls, const Record&) {
    seen.push_back(cls);
  };
  const ScavengeResult result = scavenge(log, spec);
  EXPECT_EQ(result.dropped_bad_action, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], QuarantineClass::kBadAction);
  EXPECT_EQ(to_string(QuarantineClass::kBadAction), "bad_action");
}

TEST(ScavengerTest, ValidatesSpec) {
  LogStore log;
  ScavengeSpec spec = basic_spec();
  spec.decision_event.clear();
  EXPECT_THROW(scavenge(log, spec), std::invalid_argument);
  spec = basic_spec();
  spec.num_actions = 0;
  EXPECT_THROW(scavenge(log, spec), std::invalid_argument);
  spec = basic_spec();
  spec.reward_transform = nullptr;
  EXPECT_THROW(scavenge(log, spec), std::invalid_argument);
}

LogStore lookahead_log() {
  LogStore log;
  auto add = [&log](double t, const std::string& event, const std::string& k) {
    Record rec;
    rec.time = t;
    rec.event = event;
    rec.set("key", k);
    log.append(rec);
  };
  add(1.0, "evict", "a");
  add(2.0, "access", "b");
  add(3.0, "access", "a");   // a's next access: delay 2
  add(4.0, "evict", "b");
  add(5.0, "evict", "c");    // c never accessed again
  add(9.0, "access", "b");   // b's next access: delay 5
  return log;
}

TEST(LookaheadTest, JoinsFirstFutureAccess) {
  const auto matches = lookahead_join(lookahead_log(), "evict", "access",
                                      "key", 100.0);
  ASSERT_EQ(matches.size(), 3u);
  ASSERT_TRUE(matches[0].delay.has_value());
  EXPECT_DOUBLE_EQ(*matches[0].delay, 2.0);
  ASSERT_TRUE(matches[1].delay.has_value());
  EXPECT_DOUBLE_EQ(*matches[1].delay, 5.0);
  EXPECT_FALSE(matches[2].delay.has_value());
}

TEST(LookaheadTest, HorizonCensorsDistantMatches) {
  const auto matches =
      lookahead_join(lookahead_log(), "evict", "access", "key", 3.0);
  EXPECT_TRUE(matches[0].delay.has_value());   // delay 2 <= 3
  EXPECT_FALSE(matches[1].delay.has_value());  // delay 5 > 3
}

TEST(LookaheadTest, StrictlyLaterOnly) {
  LogStore log;
  Record evict;
  evict.time = 1.0;
  evict.event = "evict";
  evict.set("key", "x");
  Record access;
  access.time = 1.0;  // same timestamp: not "later"
  access.event = "access";
  access.set("key", "x");
  log.append(access);
  log.append(evict);
  const auto matches = lookahead_join(log, "evict", "access", "key", 10.0);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_FALSE(matches[0].delay.has_value());
}

TEST(LookaheadTest, RejectsBadHorizon) {
  EXPECT_THROW(lookahead_join(LogStore{}, "a", "b", "k", 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::logs
