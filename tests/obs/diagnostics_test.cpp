// Tests for the OPE-health diagnostics: ESS and weight tails on a
// hand-built dataset, threshold-triggered warnings, and the context-drift
// regression the paper's Table 2 motivates — the statistic must fire on a
// shifted-context load-balancing log and stay quiet on a stationary
// machine-health log.
#include <gtest/gtest.h>

#include <memory>

#include "core/policies/basic.h"
#include "health/fleet.h"
#include "lb/lb_sim.h"
#include "lb/routers.h"
#include "obs/diagnostics.h"
#include "obs/metrics.h"

namespace harvest::obs {
namespace {

/// Hand-built 2-action dataset with known propensities:
///   (a=0, p=0.5), (a=0, p=0.25), (a=1, p=0.5), (a=1, p=0.25).
core::ExplorationDataset hand_built() {
  core::ExplorationDataset data(2, core::RewardRange{0.0, 1.0});
  data.add({core::FeatureVector{1.0}, 0, 0.5, 0.5});
  data.add({core::FeatureVector{1.0}, 0, 0.5, 0.25});
  data.add({core::FeatureVector{1.0}, 1, 0.5, 0.5});
  data.add({core::FeatureVector{1.0}, 1, 0.5, 0.25});
  return data;
}

TEST(OpeDiagnosticsTest, EssAndWeightsOnHandBuiltDataset) {
  const core::ExplorationDataset data = hand_built();
  const core::ConstantPolicy always0(2, 0);
  // Weights against always-action-0: {1/0.5, 1/0.25, 0, 0} = {2, 4, 0, 0}.
  // ESS = (2+4)² / (4+16) = 36/20 = 1.8.
  const OpeDiagnostics diag = compute_ope_diagnostics(data, always0, 3.0);
  EXPECT_EQ(diag.n, 4u);
  EXPECT_DOUBLE_EQ(diag.min_propensity, 0.25);
  EXPECT_DOUBLE_EQ(diag.max_weight, 4.0);
  EXPECT_DOUBLE_EQ(diag.mean_weight, 1.5);
  EXPECT_DOUBLE_EQ(diag.ess, 1.8);
  EXPECT_DOUBLE_EQ(diag.ess_fraction, 0.45);
  // Exactly one of four weights exceeds the clip threshold 3.
  EXPECT_DOUBLE_EQ(diag.clipped_fraction, 0.25);
}

TEST(OpeDiagnosticsTest, LoggingDiagnosticsUseWorstCaseWeights) {
  // w = 1/p: {2, 4, 2, 4} → ESS = 144/40 = 3.6.
  const OpeDiagnostics diag = compute_logging_diagnostics(hand_built(), 50.0);
  EXPECT_DOUBLE_EQ(diag.max_weight, 4.0);
  EXPECT_DOUBLE_EQ(diag.ess, 3.6);
  EXPECT_DOUBLE_EQ(diag.clipped_fraction, 0.0);
}

TEST(OpeDiagnosticsTest, HealthCheckFiresOnBadSetups) {
  const core::ExplorationDataset data = hand_built();
  const core::ConstantPolicy always0(2, 0);
  const OpeDiagnostics diag = compute_ope_diagnostics(data, always0);

  DiagnosticThresholds strict;
  strict.ess_fraction_min = 0.5;       // 0.45 < 0.5 → fires
  strict.min_propensity_floor = 0.3;   // 0.25 < 0.3 → fires
  strict.max_weight_ceiling = 3.0;     // 4 > 3 → fires
  const auto warnings = check_ope_health(diag, nullptr, strict);
  ASSERT_EQ(warnings.size(), 3u);
  EXPECT_EQ(warnings[0].code, "low-ess");
  EXPECT_EQ(warnings[1].code, "low-propensity");
  EXPECT_EQ(warnings[2].code, "weight-blowup");

  DiagnosticThresholds lenient;
  lenient.ess_fraction_min = 0.1;
  lenient.min_propensity_floor = 0.1;
  lenient.max_weight_ceiling = 10.0;
  EXPECT_TRUE(check_ope_health(diag, nullptr, lenient).empty());
}

TEST(OpeDiagnosticsTest, RegistersGauges) {
  Registry registry;
  const OpeDiagnostics diag = compute_logging_diagnostics(hand_built());
  DriftReport drift;
  drift.max_z = 7.5;
  register_diagnostics(registry, diag, &drift, {{"pipeline", "test"}});
  EXPECT_DOUBLE_EQ(
      registry.gauge("ope_ess", {{"pipeline", "test"}}).value(), 3.6);
  EXPECT_DOUBLE_EQ(
      registry.gauge("ope_min_propensity", {{"pipeline", "test"}}).value(),
      0.25);
  EXPECT_DOUBLE_EQ(
      registry.gauge("ope_drift_max_z", {{"pipeline", "test"}}).value(), 7.5);
}

TEST(DriftTest, DegenerateAndEmptyWindows) {
  core::ExplorationDataset a(2, {}), b(2, {});
  EXPECT_TRUE(compute_context_drift(a, b).features.empty());

  // Constant feature, same value: no drift. Different value: sentinel z.
  for (int i = 0; i < 10; ++i) {
    a.add({core::FeatureVector{1.0}, 0, 0.5, 0.5});
    b.add({core::FeatureVector{1.0}, 0, 0.5, 0.5});
  }
  EXPECT_DOUBLE_EQ(compute_context_drift(a, b).max_z, 0.0);

  core::ExplorationDataset c(2, {});
  for (int i = 0; i < 10; ++i) {
    c.add({core::FeatureVector{2.0}, 0, 0.5, 0.5});
  }
  EXPECT_GT(compute_context_drift(a, c).max_z, 1e6);
}

// The paper's regression: the closed-loop lb scenario violates A1 when the
// deployed policy changes (routing decisions feed back into the
// open-connections context), while the machine-health scenario's contexts
// are exogenous and stationary. The drift statistic must separate the two.
TEST(DriftRegressionTest, FiresOnShiftedLbLogQuietOnStationaryHealthLog) {
  const DiagnosticThresholds thresholds;  // default z threshold

  // --- lb: logging window under uniform-random routing, evaluation window
  // under send-to-0 — the A1 violation of Table 2.
  lb::LbConfig config = lb::fig5_config();
  config.num_requests = 4000;
  config.warmup_requests = 400;
  config.keep_log = false;

  util::Rng lb_rng(17);
  lb::RandomRouter random_router(2);
  const core::ExplorationDataset logged =
      lb::run_lb(config, random_router, lb_rng).exploration;
  lb::SendToRouter send0(2, 0);
  const core::ExplorationDataset shifted =
      lb::run_lb(config, send0, lb_rng).exploration;

  const DriftReport lb_drift = compute_context_drift(logged, shifted);
  EXPECT_TRUE(lb_drift.drifted(thresholds.drift_z_max))
      << "max z = " << lb_drift.max_z;
  const OpeDiagnostics lb_diag = compute_logging_diagnostics(logged);
  const auto lb_warnings = check_ope_health(lb_diag, &lb_drift, thresholds);
  bool saw_drift_warning = false;
  for (const auto& w : lb_warnings) {
    if (w.code == "context-drift") saw_drift_warning = true;
  }
  EXPECT_TRUE(saw_drift_warning);

  // --- health: two windows of the same stationary fleet process.
  const health::Fleet fleet{health::FleetConfig{}};
  util::Rng health_rng(29);
  const core::FullFeedbackDataset window_a =
      fleet.generate_dataset(2000, health_rng);
  const core::FullFeedbackDataset window_b =
      fleet.generate_dataset(2000, health_rng);
  const core::UniformRandomPolicy logging(
      health::FleetConfig{}.num_wait_actions);
  const core::ExplorationDataset health_logged =
      window_a.simulate_exploration(logging, health_rng);
  const core::ExplorationDataset health_eval =
      window_b.simulate_exploration(logging, health_rng);

  const DriftReport health_drift =
      compute_context_drift(health_logged, health_eval);
  EXPECT_FALSE(health_drift.drifted(thresholds.drift_z_max))
      << "max z = " << health_drift.max_z;
  const OpeDiagnostics health_diag =
      compute_logging_diagnostics(health_logged);
  for (const auto& w :
       check_ope_health(health_diag, &health_drift, thresholds)) {
    EXPECT_NE(w.code, "context-drift") << w.message;
  }
}

}  // namespace
}  // namespace harvest::obs
