// Tests for the observability layer: labeled metrics, span nesting,
// exporter round-trips, and registry thread safety.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace harvest::obs {
namespace {

// --- helpers -------------------------------------------------------------

/// Minimal JSON field extraction for round-trip checks: finds `"key":` and
/// parses the number that follows. Returns NaN when absent.
double json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::stod(line.substr(pos + needle.size()));
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

// --- metrics -------------------------------------------------------------

TEST(CounterTest, LabeledSeriesAggregateIndependently) {
  Registry registry;
  registry.counter("requests_total", {{"server", "0"}}).add(1);
  registry.counter("requests_total", {{"server", "0"}}).add(2);
  registry.counter("requests_total", {{"server", "1"}}).add(5);
  registry.counter("requests_total").add(10);

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_DOUBLE_EQ(
      registry.counter("requests_total", {{"server", "0"}}).value(), 3.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("requests_total", {{"server", "1"}}).value(), 5.0);
  EXPECT_DOUBLE_EQ(registry.counter("requests_total").value(), 10.0);
}

TEST(CounterTest, HandlesAreStable) {
  Registry registry;
  Counter& a = registry.counter("c", {{"k", "v"}});
  Counter& b = registry.counter("c", {{"k", "v"}});
  EXPECT_EQ(&a, &b);  // same series, same object
}

TEST(CounterTest, LabelOrderDoesNotSplitSeries) {
  Registry registry;
  registry.counter("c", {{"a", "1"}, {"b", "2"}}).add(1);
  registry.counter("c", {{"b", "2"}, {"a", "1"}}).add(1);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_DOUBLE_EQ(registry.counter("c", {{"a", "1"}, {"b", "2"}}).value(),
                   2.0);
}

TEST(GaugeTest, LastWriteWins) {
  Registry registry;
  registry.gauge("g").set(1.5);
  registry.gauge("g").set(-2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), -2.5);
}

TEST(HistogramTest, MomentsAndQuantiles) {
  Registry registry;
  Histogram& h = registry.histogram("latency");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.p50(), 500, 25);
  EXPECT_NEAR(h.p99(), 990, 20);
}

TEST(RegistryTest, ConcurrentRecordingIsSafe) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        // Lazy creation races on purpose: every thread resolves the same
        // series and a thread-unique one.
        registry.counter("shared_total").add(1);
        registry.histogram("shared_hist").observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(registry.counter("shared_total").value(),
                   kThreads * kPerThread);
  EXPECT_EQ(registry.histogram("shared_hist").count(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// --- exporters -----------------------------------------------------------

TEST(ExportTest, JsonlRoundTripPreservesValues) {
  Registry registry;
  registry.counter("events_total", {{"kind", "route"}}).add(42);
  registry.gauge("epsilon").set(0.125);
  Histogram& h = registry.histogram("latency_seconds");
  for (int i = 0; i < 100; ++i) h.observe(0.5);

  std::ostringstream out;
  write_jsonl(registry, out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);

  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"events_total\"") != std::string::npos) {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(json_field(line, "value"), 42.0);
      EXPECT_NE(line.find("\"kind\":\"route\""), std::string::npos);
    } else if (line.find("\"epsilon\"") != std::string::npos) {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(json_field(line, "value"), 0.125);
    } else if (line.find("\"latency_seconds\"") != std::string::npos) {
      saw_histogram = true;
      EXPECT_DOUBLE_EQ(json_field(line, "count"), 100.0);
      EXPECT_DOUBLE_EQ(json_field(line, "mean"), 0.5);
      EXPECT_DOUBLE_EQ(json_field(line, "p99"), 0.5);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_histogram);
}

TEST(ExportTest, EmptyHistogramExportsNullNotNan) {
  Registry registry;
  registry.histogram("empty");
  std::ostringstream out;
  write_jsonl(registry, out);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
  EXPECT_EQ(out.str().find("inf"), std::string::npos);
  EXPECT_NE(out.str().find("null"), std::string::npos);
}

TEST(ExportTest, PrometheusTextDump) {
  Registry registry;
  registry.counter("requests_total", {{"server", "1"}}).add(7);
  registry.histogram("latency").observe(2.0);

  std::ostringstream out;
  write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{server=\"1\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency summary"), std::string::npos);
  EXPECT_NE(text.find("latency{quantile=\"0.5\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_count 1"), std::string::npos);
}

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// --- tracing -------------------------------------------------------------

TEST(TraceTest, NestedSpansRecordParentAndTiming) {
  Tracer tracer(16);
  {
    ScopedSpan outer(tracer, "outer");
    {
      ScopedSpan inner(tracer, "inner");
    }
    {
      ScopedSpan sibling(tracer, "sibling");
    }
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: inner, sibling, outer.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "sibling");
  EXPECT_EQ(spans[2].name, "outer");

  const SpanRecord& outer = spans[2];
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(outer.depth, 0);
  for (int i : {0, 1}) {
    EXPECT_EQ(spans[i].parent_id, outer.id);
    EXPECT_EQ(spans[i].depth, 1);
    EXPECT_GE(spans[i].start_us, outer.start_us);
    EXPECT_LE(spans[i].duration_us, outer.duration_us);
    EXPECT_GE(spans[i].duration_us, 0.0);
  }
}

TEST(TraceTest, RingBufferKeepsNewestSpans) {
  Tracer tracer(2);
  { ScopedSpan s(tracer, "first"); }
  { ScopedSpan s(tracer, "second"); }
  { ScopedSpan s(tracer, "third"); }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "second");
  EXPECT_EQ(spans[1].name, "third");
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer(16);
  tracer.set_enabled(false);
  { ScopedSpan s(tracer, "ignored"); }
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TraceTest, JsonlDumpIsOneObjectPerSpan) {
  Tracer tracer(16);
  {
    ScopedSpan outer(tracer, "pipeline.evaluate");
    ScopedSpan inner(tracer, "pipeline.scavenge");
  }
  std::ostringstream out;
  tracer.write_jsonl(out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_FALSE(std::isnan(json_field(line, "id")));
    EXPECT_FALSE(std::isnan(json_field(line, "parent")));
    EXPECT_FALSE(std::isnan(json_field(line, "duration_us")));
  }
  // The child names its parent.
  const double outer_id = json_field(lines[1], "id");
  EXPECT_DOUBLE_EQ(json_field(lines[0], "parent"), outer_id);
}

TEST(TraceTest, ClearResets) {
  Tracer tracer(4);
  { ScopedSpan s(tracer, "x"); }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
}

}  // namespace
}  // namespace harvest::obs
