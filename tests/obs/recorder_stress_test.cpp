// Concurrency hammering for the flight recorder (runs under
// HARVEST_SANITIZE=thread in CI): multi-producer loss accounting and the
// drain-while-recording race.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/recorder.h"

namespace harvest::obs {
namespace {

Recorder::Options options_for(std::size_t ring, std::size_t trace,
                              bool self_drain) {
  Recorder::Options options;
  options.ring_capacity = ring;
  options.trace_capacity = trace;
  options.self_drain = self_drain;
  return options;
}

TEST(RecorderStressTest, MultiProducerLosesNothingBelowCapacity) {
  // Every producer stays within its own ring's capacity and the collector
  // never runs until the end: all events must land, none dropped.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 1000;
  Recorder recorder(options_for(2048, kThreads * kPerThread, false));
  const std::uint32_t name = recorder.intern("stress.emit");

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, name, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(recorder.emit_instant(name, t, i));
      }
    });
  }
  for (auto& t : threads) t.join();

  const DrainStats stats = recorder.drain();
  EXPECT_EQ(stats.collected, kThreads * kPerThread);
  EXPECT_EQ(recorder.ring_dropped_total(), 0u);
  EXPECT_EQ(recorder.trace_evicted_total(), 0u);
  EXPECT_EQ(recorder.num_threads(), kThreads);

  // Per-thread event counts reconstruct exactly from the payload.
  std::vector<std::size_t> per_thread(kThreads, 0);
  for (const Event& e : recorder.snapshot_events()) {
    ASSERT_LT(e.a, kThreads);
    ++per_thread[e.a];
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kPerThread) << "thread " << t;
  }
}

TEST(RecorderStressTest, DropAccountingIsExactAboveCapacity) {
  // Self-drain off and no collector: each thread attempts far more than its
  // ring holds. Whatever was not pushed must be counted, exactly.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  Recorder recorder(options_for(256, 1 << 16, false));
  const std::uint32_t name = recorder.intern("stress.drop");

  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &pushed, name, t] {
      std::uint64_t mine = 0;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if (recorder.emit_instant(name, t, i)) ++mine;
      }
      pushed.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  // pushed + dropped == attempted, with no slack in either direction.
  EXPECT_EQ(pushed.load() + recorder.ring_dropped_total(),
            kThreads * kPerThread);
  const DrainStats stats = recorder.drain();
  EXPECT_EQ(stats.collected, pushed.load());
}

TEST(RecorderStressTest, DrainWhileRecordingIsRaceFree) {
  // Producers hammer their rings (self-drain on) while a collector thread
  // drains concurrently — the TSAN target for the SPSC handoff. Every event
  // is either collected or still buffered; nothing drops or duplicates.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20000;
  Recorder recorder(options_for(512, 1 << 18, true));
  const std::uint32_t name = recorder.intern("stress.race");

  std::atomic<bool> stop{false};
  std::thread collector([&recorder, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      recorder.drain();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, name, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(recorder.emit_instant(name, t, i));
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  collector.join();

  EXPECT_EQ(recorder.ring_dropped_total(), 0u);
  EXPECT_EQ(recorder.snapshot_events().size(), kThreads * kPerThread);
}

TEST(RecorderStressTest, BackgroundCollectorKeepsRingsBounded) {
  Recorder recorder(options_for(1024, 1 << 18, false));
  const std::uint32_t name = recorder.intern("stress.collector");
  recorder.start_collector(std::chrono::milliseconds(1));
  EXPECT_TRUE(recorder.collector_running());

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, name, t] {
      for (std::size_t i = 0; i < 5000; ++i) {
        recorder.emit_instant(name, t, i);
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  recorder.stop_collector();
  EXPECT_FALSE(recorder.collector_running());

  // The final drain in stop_collector leaves nothing buffered; accounting
  // still balances even if a burst outran the 1ms collector.
  const std::size_t collected = recorder.snapshot_events().size();
  EXPECT_EQ(collected + recorder.ring_dropped_total(), 4u * 5000u);
}

TEST(RecorderStressTest, ConcurrentInterningIsStable) {
  Recorder recorder(options_for(256, 1 << 12, true));
  constexpr std::size_t kThreads = 8;
  std::vector<std::uint32_t> ids(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &ids, t] {
      for (int i = 0; i < 200; ++i) {
        ids[t] = recorder.intern("shared.name");
        recorder.intern("name." + std::to_string(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(recorder.name_of(ids[0]), "shared.name");
}

}  // namespace
}  // namespace harvest::obs
