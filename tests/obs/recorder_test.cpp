// Unit tests for the flight recorder: event round-trips, exact drop
// accounting, bounded-trace eviction, registry aggregation, the legacy
// Tracer facade's prometheus/cardinality satellites, and a golden
// chrome-trace validity check.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace harvest::obs {
namespace {

Recorder::Options small_options(std::size_t ring, std::size_t trace,
                                bool self_drain) {
  Recorder::Options options;
  options.ring_capacity = ring;
  options.trace_capacity = trace;
  options.self_drain = self_drain;
  return options;
}

TEST(RecorderTest, EventIsFixedSize) {
  EXPECT_EQ(sizeof(Event), 40u);
}

TEST(RecorderTest, EmittedEventsRoundTripThroughDrain) {
  Recorder recorder(small_options(64, 1024, true));
  const std::uint32_t name = recorder.intern("test.span");
  EXPECT_EQ(recorder.intern("test.span"), name);  // interning is stable
  EXPECT_EQ(recorder.name_of(name), "test.span");

  EXPECT_TRUE(recorder.emit_span(name, 100, 50, 7, 8));
  EXPECT_TRUE(recorder.emit_instant(name, 1, 2));
  EXPECT_TRUE(recorder.emit_counter(name, 2.5));

  const std::vector<Event> events = recorder.snapshot_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 50u);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 8u);
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_EQ(events[2].kind, EventKind::kCounter);
  EXPECT_EQ(recorder.ring_dropped_total(), 0u);
}

TEST(RecorderTest, DisabledRecorderEmitsNothing) {
  Recorder recorder(small_options(64, 64, true));
  recorder.set_enabled(false);
  const std::uint32_t name = recorder.intern("off");
  EXPECT_FALSE(recorder.emit_instant(name));
  EXPECT_TRUE(recorder.snapshot_events().empty());
  EXPECT_EQ(recorder.ring_dropped_total(), 0u);  // disabled != dropped
}

TEST(RecorderTest, DropAccountingIsExactWithoutSelfDrain) {
  // Ring of 8 slots, self-drain off: exactly capacity pushes land, the rest
  // are counted drops — pushed + dropped == attempted.
  Recorder recorder(small_options(8, 1024, false));
  const std::uint32_t name = recorder.intern("drop");
  const std::size_t attempted = 50;
  std::size_t pushed = 0;
  for (std::size_t i = 0; i < attempted; ++i) {
    if (recorder.emit_instant(name, i)) ++pushed;
  }
  EXPECT_EQ(pushed, recorder.ring_capacity());
  EXPECT_EQ(recorder.ring_dropped_total(), attempted - pushed);
  EXPECT_EQ(recorder.snapshot_events().size(), pushed);
  // After a drain the ring has room again.
  EXPECT_TRUE(recorder.emit_instant(name, 99));
}

TEST(RecorderTest, SelfDrainKeepsDefaultConfigLossFree) {
  Recorder recorder(small_options(8, 4096, true));
  const std::uint32_t name = recorder.intern("burst");
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(recorder.emit_instant(name, i));
  }
  EXPECT_EQ(recorder.ring_dropped_total(), 0u);
  EXPECT_EQ(recorder.snapshot_events().size(), 1000u);
}

TEST(RecorderTest, BoundedTraceKeepsNewestAndCountsEvictions) {
  Recorder recorder(small_options(64, 4, true));
  const std::uint32_t name = recorder.intern("evict");
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.emit_span(name, i, 1, i);
  }
  const std::vector<Event> events = recorder.snapshot_events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the newest four events.
  EXPECT_EQ(events[0].a, 6u);
  EXPECT_EQ(events[3].a, 9u);
  EXPECT_EQ(recorder.trace_evicted_total(), 6u);
  EXPECT_EQ(recorder.ring_dropped_total(), 0u);
}

TEST(RecorderTest, ResetClearsEventsAndAccounting) {
  Recorder recorder(small_options(8, 4, false));
  const std::uint32_t name = recorder.intern("reset");
  for (std::size_t i = 0; i < 20; ++i) recorder.emit_instant(name);
  recorder.drain();
  EXPECT_GT(recorder.ring_dropped_total(), 0u);
  recorder.reset();
  EXPECT_EQ(recorder.ring_dropped_total(), 0u);
  EXPECT_EQ(recorder.trace_evicted_total(), 0u);
  EXPECT_TRUE(recorder.snapshot_events().empty());
  // Interned names survive reset.
  EXPECT_EQ(recorder.name_of(name), "reset");
}

TEST(RecorderTest, DrainAggregatesIntoRegistry) {
  Registry registry;
  Recorder::Options options = small_options(64, 1024, true);
  options.registry = &registry;
  Recorder recorder(options);
  const std::uint32_t span_name = recorder.intern("agg.span");
  const std::uint32_t instant_name = recorder.intern("agg.instant");
  recorder.emit_span(span_name, 0, 5000, 0, 0);  // 5 us
  recorder.emit_span(span_name, 0, 7000, 0, 0);  // 7 us
  recorder.emit_instant(instant_name);
  recorder.drain();

  EXPECT_DOUBLE_EQ(
      registry.counter("recorder_events_total", {{"kind", "span"}}).value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("recorder_events_total", {{"kind", "instant"}})
          .value(),
      1.0);
  Histogram& h =
      registry.histogram("recorder_span_us", {{"name", "agg.span"}});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(RecorderTest, ThreadNamesAppearInExportOrder) {
  Recorder recorder(small_options(64, 64, true));
  recorder.set_thread_name("main");
  recorder.emit_instant(recorder.intern("x"));
  const auto names = recorder.thread_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "main");
}

// Golden chrome-trace check: deterministic event stream (explicit
// timestamps) must render as byte-stable, loadable Trace Event JSON.
TEST(RecorderTest, ChromeTraceGolden) {
  Recorder recorder(small_options(64, 64, true));
  recorder.set_thread_name("main");
  const std::uint32_t stage = recorder.intern("stage");
  const std::uint32_t mark = recorder.intern("mark");
  const std::uint32_t depth = recorder.intern("queue_depth");
  recorder.emit_span(stage, 1000, 2500, 3, 4);
  recorder.emit_instant(mark, 1, 0);  // ts from the live clock
  recorder.emit_counter(depth, 2.0);

  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string json = out.str();

  // Envelope + metadata.
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
                      "\"thread_name\",\"args\":{\"name\":\"main\"}"),
            std::string::npos);
  // The explicit-timestamp span renders exactly.
  EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1,"
                      "\"dur\":2.5,\"name\":\"stage\","
                      "\"args\":{\"a\":3,\"b\":4}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":2"), std::string::npos);
  // Valid JSON shape: one object, balanced brackets, closing envelope.
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\n]}"), std::string::npos);
  std::size_t braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0u);
  EXPECT_EQ(brackets, 0u);
}

// --- satellite regressions ----------------------------------------------

TEST(ExportTest, PrometheusEscapesHostileLabelValues) {
  Registry registry;
  registry.counter("hostile_total", {{"path", "C:\\logs\"evil\"\nx"}}).add(1);
  std::ostringstream out;
  write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(
      text.find("hostile_total{path=\"C:\\\\logs\\\"evil\\\"\\nx\"} 1"),
      std::string::npos);
  // The raw newline must not reach the exposition output.
  EXPECT_EQ(text.find("evil\"\nx"), std::string::npos);
}

TEST(RegistryTest, CardinalityGuardCollapsesIntoOverflowSeries) {
  Registry registry;
  registry.set_series_limit(4);
  for (int i = 0; i < 10; ++i) {
    registry.counter("blocks_total", {{"block", std::to_string(i)}}).add(1);
  }
  // 4 real series + 1 overflow series, never more.
  EXPECT_EQ(registry.size(), 5u);
  EXPECT_EQ(registry.series_overflow_total(), 6u);
  EXPECT_DOUBLE_EQ(
      registry.counter("blocks_total", {{"overflow", "true"}}).value(), 6.0);
  // Pre-existing series keep recording normally.
  registry.counter("blocks_total", {{"block", "0"}}).add(1);
  EXPECT_DOUBLE_EQ(
      registry.counter("blocks_total", {{"block", "0"}}).value(), 2.0);
  // Other names are unaffected by this name's overflow.
  registry.counter("other_total").add(1);
  EXPECT_DOUBLE_EQ(registry.counter("other_total").value(), 1.0);
}

TEST(RegistryTest, ClearResetsCardinalityAccounting) {
  Registry registry;
  registry.set_series_limit(1);
  registry.counter("c", {{"k", "1"}}).add(1);
  registry.counter("c", {{"k", "2"}}).add(1);
  EXPECT_GT(registry.series_overflow_total(), 0u);
  registry.clear();
  EXPECT_EQ(registry.series_overflow_total(), 0u);
  registry.counter("c", {{"k", "3"}}).add(1);  // room again after clear
  EXPECT_DOUBLE_EQ(registry.counter("c", {{"k", "3"}}).value(), 1.0);
}

}  // namespace
}  // namespace harvest::obs
