// Concurrency stress for the observability layer: 16 threads hammer the
// metric registry (lazy series creation included) and the span trace ring
// simultaneously. Assertions check conservation (no lost increments or
// observations); run under -DHARVEST_SANITIZE=thread this doubles as the
// TSAN gate for obs + par.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace harvest::obs {
namespace {

constexpr std::size_t kThreads = 16;
constexpr std::size_t kOpsPerThread = 2000;

TEST(ObsStress, RegistryCountersConserveUnderContention) {
  Registry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        // Shared series: every thread races on the same counter.
        registry.counter("stress_shared_total").add(1);
        // Distinct series per thread: races lazy creation in the map.
        registry
            .counter("stress_labeled_total",
                     {{"thread", std::to_string(t)}})
            .add(1);
        registry.gauge("stress_gauge").set(static_cast<double>(i));
        registry.histogram("stress_hist").observe(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_DOUBLE_EQ(registry.counter("stress_shared_total").value(),
                   static_cast<double>(kThreads * kOpsPerThread));
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        registry
            .counter("stress_labeled_total", {{"thread", std::to_string(t)}})
            .value(),
        static_cast<double>(kOpsPerThread));
  }
  EXPECT_EQ(registry.histogram("stress_hist").count(),
            kThreads * kOpsPerThread);
  EXPECT_EQ(registry.size(), 2 + kThreads + 1);  // shared+gauge+hist+labels
}

TEST(ObsStress, TraceRingSurvivesConcurrentSpans) {
  Tracer tracer(256);  // small ring: force constant wraparound
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (std::size_t i = 0; i < kOpsPerThread / 4; ++i) {
        ScopedSpan outer(tracer, "stress.outer");
        ScopedSpan inner(tracer, "stress.inner");
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<SpanRecord> spans = tracer.snapshot();
  EXPECT_LE(spans.size(), tracer.capacity());
  EXPECT_GT(spans.size(), 0u);
  for (const auto& span : spans) {
    EXPECT_TRUE(span.name == "stress.outer" || span.name == "stress.inner");
    EXPECT_GE(span.duration_us, 0.0);
  }
}

TEST(ObsStress, PoolWorkersRecordingMetricsConserve) {
  // The real usage shape: par tasks record into the global-style registry
  // while the pool churns. Conservation must hold across submit/drain.
  Registry registry;
  {
    par::ThreadPool pool(8);
    par::TaskGroup group(&pool);
    for (std::size_t i = 0; i < 4000; ++i) {
      group.run([&registry] {
        registry.counter("pool_tasks_done").add(1);
        registry.histogram("pool_task_val").observe(1.0);
      });
    }
    group.wait();
  }
  EXPECT_DOUBLE_EQ(registry.counter("pool_tasks_done").value(), 4000.0);
  EXPECT_EQ(registry.histogram("pool_task_val").count(), 4000u);
}

}  // namespace
}  // namespace harvest::obs
