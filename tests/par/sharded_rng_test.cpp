// Regression tests for ShardedRng seed derivation. The naive derivation
// `seed + shard` makes (root, shard+1) and (root+1, shard) the SAME stream,
// so experiments run with adjacent seeds would share almost all their
// randomness. The fixed derivation (util::derive_stream_seed, splitmix-style
// mixing) must avoid the collision and leave adjacent-root streams
// statistically unrelated — checked by a chi-squared uniformity test on the
// XOR of paired outputs.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "par/sharded_rng.h"
#include "util/hash.h"

namespace harvest::par {
namespace {

TEST(ShardedRng, AdjacentSeedStreamsDoNotCollide) {
  // The regression: with naive `root + shard` derivation these two streams
  // would be identical.
  const ShardedRng a(42);
  const ShardedRng b(43);
  for (std::uint64_t shard = 0; shard < 64; ++shard) {
    EXPECT_NE(a.stream_seed(shard + 1), b.stream_seed(shard))
        << "stream " << shard << " collides across adjacent roots";
  }
  // Sanity: the naive derivation really does collide (what we are guarding
  // against).
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(42 + (shard + 1), 43 + shard);
  }
}

TEST(ShardedRng, StreamSeedsAreDistinctWithinARoot) {
  const ShardedRng rng(7);
  std::set<std::uint64_t> seen;
  for (std::uint64_t shard = 0; shard < 10000; ++shard) {
    EXPECT_TRUE(seen.insert(rng.stream_seed(shard)).second)
        << "duplicate seed at stream " << shard;
  }
}

TEST(ShardedRng, DerivationIsPureAndThreadCountFree) {
  const ShardedRng rng(1234);
  EXPECT_EQ(rng.stream_seed(17), rng.stream_seed(17));
  EXPECT_EQ(rng.stream_seed(17),
            util::derive_stream_seed(1234, 17));
  util::Rng s1 = rng.stream(5);
  util::Rng s2 = rng.stream(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

/// Chi-squared uniformity on the XOR of paired outputs from streams of
/// ADJACENT roots. If the streams were correlated (as with naive
/// derivation, where the XOR would be all-zero), the low byte of the XOR
/// would be wildly non-uniform.
TEST(ShardedRng, AdjacentRootStreamXorPassesChiSquared) {
  const ShardedRng a(1000);
  const ShardedRng b(1001);
  constexpr std::size_t kStreams = 8;
  constexpr std::size_t kDrawsPerStream = 512;
  constexpr std::size_t kCells = 256;
  std::vector<std::size_t> counts(kCells, 0);
  double popcount_sum = 0;
  std::size_t samples = 0;
  for (std::uint64_t shard = 0; shard < kStreams; ++shard) {
    util::Rng ra = a.stream(shard + 1);  // the naive-collision partner...
    util::Rng rb = b.stream(shard);      // ...of this stream
    for (std::size_t d = 0; d < kDrawsPerStream; ++d) {
      const std::uint64_t x = ra.next_u64() ^ rb.next_u64();
      ++counts[x & 0xFF];
      popcount_sum += static_cast<double>(std::popcount(x));
      ++samples;
    }
  }
  const double expected =
      static_cast<double>(samples) / static_cast<double>(kCells);
  double chi2 = 0;
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    const double diff = static_cast<double>(counts[cell]) - expected;
    chi2 += diff * diff / expected;
  }
  // 255 degrees of freedom: mean 255, stddev ~22.6. 350 is ~4 sigma; the
  // all-zero XOR of correlated streams would put every sample in cell 0
  // (chi2 ~ samples * 255 ≈ a million).
  EXPECT_LT(chi2, 350.0) << "XOR of adjacent-root streams is non-uniform";
  // Independent uniform bits: mean popcount of the XOR is 32 +- ~0.1.
  EXPECT_NEAR(popcount_sum / static_cast<double>(samples), 32.0, 0.5);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit must flip roughly half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t x = 0x0123456789abcdefULL;
    const std::uint64_t flipped =
        util::mix64(x) ^ util::mix64(x ^ (1ULL << bit));
    const int changed = std::popcount(flipped);
    EXPECT_GT(changed, 16) << "bit " << bit;
    EXPECT_LT(changed, 48) << "bit " << bit;
  }
}

}  // namespace
}  // namespace harvest::par
