// Unit tests for the deterministic parallel layer: pool lifecycle,
// exception propagation, nested submission, and the bit-determinism of
// parallel_for / parallel_reduce / bootstrap across pool sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "par/par.h"
#include "stats/bootstrap.h"

namespace harvest::par {
namespace {

TEST(ThreadPool, StartupShutdownDrainsAllTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must drain every queued task before joining.
  }
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, SingleWorkerPoolRunsEverything) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, RepeatedConstructionAndTeardown) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    TaskGroup group(&pool);
    group.run([] {});
    group.wait();
    // Give no guarantees about `ran` until destruction...
  }
  SUCCEED();
}

TEST(TaskGroup, WaitsForAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 200; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 200);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.run([i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, InlineWhenPoolIsNull) {
  std::atomic<int> ran{0};
  TaskGroup group(nullptr);
  group.run([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);  // ran inline, before wait()
  group.wait();
}

TEST(TaskGroup, InlineExceptionDeferredToWait) {
  TaskGroup group(nullptr);
  group.run([] { throw std::logic_error("inline failure"); });
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &ran] {
      // May run on a worker or on the caller (work-helping join); either
      // way, nested fan-out from inside a running task must not deadlock.
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ShardPlan, LayoutIsThreadCountIndependentAndCoversRange) {
  for (std::size_t n : {0u, 1u, 5u, 511u, 512u, 513u, 100000u}) {
    const ShardPlan plan = ShardPlan::fixed(n);
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (std::size_t s = 0; s < plan.num_shards; ++s) {
      const auto [begin, end] = plan.bounds(s);
      EXPECT_EQ(begin, prev_end);
      EXPECT_LE(begin, end);
      covered += end - begin;
      prev_end = end;
    }
    EXPECT_EQ(covered, n);
    if (n > 0) EXPECT_EQ(prev_end, n);
  }
}

TEST(ShardPlan, PerItemGivesOneShardPerItemUpToCap) {
  EXPECT_EQ(ShardPlan::per_item(5).num_shards, 5u);
  EXPECT_EQ(ShardPlan::per_item(200, 64).num_shards, 64u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for_n(&pool, n, [&](std::size_t, std::size_t begin,
                               std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, PropagatesShardException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, ShardPlan::fixed(10000, 16),
                   [](std::size_t shard, std::size_t, std::size_t) {
                     if (shard == 3) {
                       throw std::runtime_error("shard 3 failed");
                     }
                   }),
      std::runtime_error);
}

/// The core guarantee: identical results for pool sizes 0 (sequential),
/// 1, 2, and 8 — compared bitwise, not within tolerance.
TEST(ParallelReduce, BitIdenticalAcrossPoolSizes) {
  const std::size_t n = 50000;
  std::vector<double> values(n);
  util::Rng rng(1234);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0);

  auto run = [&](ThreadPool* pool) {
    return parallel_reduce(
        pool, ShardPlan::fixed(n, 128), 0.0,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          double s = 0;
          // Deliberately non-associative-friendly accumulation.
          for (std::size_t i = begin; i < end; ++i) {
            s += std::sin(values[i]) * 1e-3 + values[i];
          }
          return s;
        },
        [](double acc, double s) { return acc + s; });
  };

  const double sequential = run(nullptr);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const double parallel = run(&pool);
    EXPECT_EQ(sequential, parallel) << "pool size " << threads;
  }
}

TEST(ParallelReduce, MergesInShardOrder) {
  ThreadPool pool(4);
  const ShardPlan plan = ShardPlan::per_item(16);
  const std::vector<std::size_t> order = parallel_reduce(
      &pool, plan, std::vector<std::size_t>{},
      [](std::size_t shard, std::size_t, std::size_t) {
        return std::vector<std::size_t>{shard};
      },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> shard) {
        acc.insert(acc.end(), shard.begin(), shard.end());
        return acc;
      });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ShardedBootstrap, BitIdenticalAcrossPoolSizes) {
  std::vector<double> values(500);
  util::Rng rng(99);
  for (auto& v : values) v = rng.normal(0.0, 1.0);
  const stats::IndexStatistic mean_stat =
      [&values](std::span<const std::size_t> idx) {
        double s = 0;
        for (std::size_t i : idx) s += values[i];
        return s / static_cast<double>(idx.size());
      };

  const std::vector<double> sequential =
      bootstrap_replicates(nullptr, values.size(), mean_stat, 200, 7);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<double> parallel =
        bootstrap_replicates(&pool, values.size(), mean_stat, 200, 7);
    EXPECT_EQ(sequential, parallel) << "pool size " << threads;
  }

  // And the derived interval is sane: contains the sample mean.
  const stats::Interval ci = bootstrap_mean_interval(
      nullptr, values, 200, 0.05, 7);
  double sample_mean = 0;
  for (double v : values) sample_mean += v;
  sample_mean /= static_cast<double>(values.size());
  EXPECT_LE(ci.lo, sample_mean);
  EXPECT_GE(ci.hi, sample_mean);
}

TEST(DefaultPool, ZeroAndOneMeanSequential) {
  set_default_threads(0);
  EXPECT_EQ(default_pool(), nullptr);
  EXPECT_EQ(default_threads(), 1u);
  set_default_threads(1);
  EXPECT_EQ(default_pool(), nullptr);
  set_default_threads(4);
  ASSERT_NE(default_pool(), nullptr);
  EXPECT_EQ(default_pool()->num_threads(), 3u);  // caller counts as one
  EXPECT_EQ(default_threads(), 4u);
  set_default_threads(1);  // leave the process sequential for other tests
  EXPECT_EQ(default_pool(), nullptr);
}

}  // namespace
}  // namespace harvest::par
