// Persistence properties for the snapshot store: serialize→save→load→
// serialize must be bit-identical (NaN and -0.0 weights included), damaged
// files must be rejected and quarantined (never crash, never decide), and a
// service resumed from disk must make bit-identical decisions to one handed
// the original snapshot directly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "serve/persist.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/trainer.h"
#include "util/rng.h"

namespace harvest::serve {
namespace {

namespace fs = std::filesystem;

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("serve_persist_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// Random snapshot whose weights include the bit patterns that break naive
/// text round trips: NaN, -0.0, +/-inf, and denormals.
std::unique_ptr<const PolicySnapshot> random_snapshot(std::uint64_t id,
                                                      util::Rng& rng) {
  const std::size_t num_actions = 1 + rng.uniform_index(6);
  const std::size_t dim = rng.uniform_index(kMaxContextDim + 1);
  std::vector<double> weights(num_actions * (dim + 1));
  for (auto& w : weights) {
    switch (rng.uniform_index(8)) {
      case 0: w = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: w = -0.0; break;
      case 2: w = std::numeric_limits<double>::infinity(); break;
      case 3: w = -std::numeric_limits<double>::infinity(); break;
      case 4: w = std::numeric_limits<double>::denorm_min(); break;
      default: w = rng.uniform(-10, 10); break;
    }
  }
  return std::make_unique<const PolicySnapshot>(id, num_actions, dim,
                                                std::move(weights),
                                                rng.uniform());
}

void corrupt_byte(const fs::path& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  f.seekp(static_cast<std::streamoff>(offset));
  c = static_cast<char>(c ^ 0x5A);
  f.write(&c, 1);
}

std::string current_target(const fs::path& dir) {
  std::ifstream in(dir / std::string(kCurrentFileName));
  std::string name;
  std::getline(in, name);
  return name;
}

TEST_F(PersistTest, SaveLoadRoundTripIsBitIdentical) {
  util::Rng rng(101);
  SnapshotStore store({.dir = dir_});
  for (int trial = 0; trial < 60; ++trial) {
    const auto snap = random_snapshot(static_cast<std::uint64_t>(trial + 1),
                                      rng);
    const std::string before = snap->serialize();
    const fs::path path = store.save(*snap);
    const auto loaded = SnapshotStore::load_file(path);
    ASSERT_NE(loaded, nullptr);
    // Bit-identical serialization — NaN payloads, -0.0, infinities, and
    // denormals survive exactly.
    EXPECT_EQ(loaded->serialize(), before);
    EXPECT_TRUE(loaded->verify_integrity());
    EXPECT_EQ(loaded->id(), snap->id());
    EXPECT_EQ(loaded->num_actions(), snap->num_actions());
    EXPECT_EQ(loaded->dim(), snap->dim());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->epsilon()),
              std::bit_cast<std::uint64_t>(snap->epsilon()));
  }
  EXPECT_EQ(store.saved(), 60u);
  EXPECT_EQ(store.quarantined(), 0u);
  // Atomic writes leave no temporaries behind: only snapshots + CURRENT.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == kCurrentFileName ||
                entry.path().extension() == kSnapshotFileExt)
        << "unexpected file " << name;
  }
  EXPECT_EQ(files, 61u);
}

TEST_F(PersistTest, DeserializeRejectsMalformedPayloads) {
  util::Rng rng(7);
  const auto snap = random_snapshot(9, rng);
  const std::string good = snap->serialize();

  EXPECT_THROW(PolicySnapshot::deserialize(""), std::invalid_argument);
  EXPECT_THROW(PolicySnapshot::deserialize(good.substr(0, 10)),
               std::invalid_argument);
  // Truncated weights.
  EXPECT_THROW(PolicySnapshot::deserialize(good.substr(0, good.size() - 8)),
               std::invalid_argument);
  // Trailing garbage.
  EXPECT_THROW(PolicySnapshot::deserialize(good + "x"),
               std::invalid_argument);
  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_THROW(PolicySnapshot::deserialize(bad), std::invalid_argument);
  // Epsilon out of [0, 1] (bit pattern of 2.0 spliced into the header).
  bad = good;
  const std::uint64_t two = std::bit_cast<std::uint64_t>(2.0);
  for (int i = 0; i < 8; ++i) {
    bad[20 + i] = static_cast<char>((two >> (8 * i)) & 0xFF);
  }
  EXPECT_THROW(PolicySnapshot::deserialize(bad), std::invalid_argument);
}

TEST_F(PersistTest, ParseSnapshotFileValidatesFraming) {
  util::Rng rng(8);
  const auto snap = random_snapshot(3, rng);
  const std::string file = frame_snapshot_file(snap->serialize());

  EXPECT_NE(parse_snapshot_file(file), nullptr);
  EXPECT_THROW(parse_snapshot_file(file.substr(0, 12)),
               std::invalid_argument);
  EXPECT_THROW(parse_snapshot_file(file.substr(0, file.size() - 1)),
               std::invalid_argument);
  std::string bad = file;
  bad[1] = 'x';  // magic
  EXPECT_THROW(parse_snapshot_file(bad), std::invalid_argument);
  bad = file;
  bad[4] = 9;  // unsupported version
  EXPECT_THROW(parse_snapshot_file(bad), std::invalid_argument);
  bad = file;
  bad[file.size() - 1] = static_cast<char>(bad[file.size() - 1] ^ 1);  // CRC
  EXPECT_THROW(parse_snapshot_file(bad), std::invalid_argument);
}

TEST_F(PersistTest, CorruptedCurrentTargetQuarantinedWithFallback) {
  util::Rng rng(21);
  SnapshotStore store({.dir = dir_});
  const auto older = random_snapshot(4, rng);
  const auto newer = random_snapshot(5, rng);
  store.save(*older);
  const fs::path newest = store.save(*newer);
  ASSERT_EQ(current_target(dir_), newest.filename().string());

  // Flip one payload byte of the CURRENT target: the CRC must catch it, the
  // file must be renamed aside, and the load must fall back to the older
  // intact snapshot.
  corrupt_byte(newest, 40);
  SnapshotStore::LoadResult result = store.load_current();
  ASSERT_NE(result.snapshot, nullptr);
  EXPECT_EQ(result.snapshot->id(), 4u);
  EXPECT_EQ(result.snapshot->serialize(), older->serialize());
  EXPECT_FALSE(result.from_current);
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_FALSE(fs::exists(newest));
  EXPECT_TRUE(fs::exists(newest.string() + std::string(kQuarantineSuffix)));
}

TEST_F(PersistTest, TruncatedOnlySnapshotYieldsEmptyStoreAndUniformFallback) {
  util::Rng rng(22);
  SnapshotStore store({.dir = dir_});
  const auto snap = PolicySnapshot::from_weights(
      7, {{0.4, 0.1, 0.2}, {0.1, 0.0, 0.3}, {0.0, 0.2, 0.1}}, 0.2);
  const fs::path path = store.save(*snap);
  fs::resize_file(path, 10);  // torn write without the atomic rename

  SnapshotStore::LoadResult result = store.load_current();
  EXPECT_EQ(result.snapshot, nullptr);
  EXPECT_EQ(result.quarantined, 1u);

  // resume_service falls back to uniform exploration, never crashes.
  ResumeResult resumed =
      resume_service({.num_actions = 3, .dim = 2, .seed = 5}, store);
  ASSERT_NE(resumed.service, nullptr);
  EXPECT_FALSE(resumed.resumed);
  EXPECT_EQ(resumed.service->current_id(), 1u);
  Decider& d = resumed.service->add_decider();
  const std::vector<double> x{0.5, 0.5};
  EXPECT_EQ(d.decide(x).propensity, 1.0 / 3.0);  // uniform
}

TEST_F(PersistTest, DanglingCurrentPointerFallsBackToScan) {
  util::Rng rng(23);
  SnapshotStore store({.dir = dir_});
  const auto snap = random_snapshot(11, rng);
  store.save(*snap);
  // CURRENT names a file that does not exist (e.g. a crash between manual
  // cleanup steps); the scan must still find the intact snapshot.
  std::ofstream(dir_ / std::string(kCurrentFileName))
      << "snapshot-99999999999999999999.hsnap\n";
  SnapshotStore::LoadResult result = store.load_current();
  ASSERT_NE(result.snapshot, nullptr);
  EXPECT_EQ(result.snapshot->id(), 11u);
  EXPECT_FALSE(result.from_current);
  EXPECT_EQ(result.quarantined, 0u);
}

TEST_F(PersistTest, GeometryMismatchedSnapshotIsQuarantined) {
  SnapshotStore store({.dir = dir_});
  store.save(*PolicySnapshot::uniform(3, 4, 6));  // 4 actions, dim 6
  SnapshotStore::LoadResult result = store.load_current(3, 2);
  EXPECT_EQ(result.snapshot, nullptr);
  EXPECT_EQ(result.quarantined, 1u);
  // Without the geometry expectation the same file loads fine.
  SnapshotStore store2({.dir = dir_});
  store2.save(*PolicySnapshot::uniform(3, 4, 6));
  EXPECT_NE(store2.load_current().snapshot, nullptr);
}

TEST_F(PersistTest, ResumedServiceDecidesBitIdenticallyAtFixedSeed) {
  util::Rng wrng(31);
  std::vector<std::vector<double>> weights(3, std::vector<double>(5));
  for (auto& row : weights) {
    for (auto& v : row) v = wrng.uniform(-1, 1);
  }
  const std::uint64_t seed = 77;
  const std::size_t dim = 4;

  // Uninterrupted: a service handed the snapshot object directly.
  DecisionService direct({.num_actions = 3, .dim = dim, .seed = seed},
                         PolicySnapshot::from_weights(7, weights, 0.2));
  // Warm restart: the same snapshot persisted, then loaded from disk.
  SnapshotStore store({.dir = dir_});
  store.save(*PolicySnapshot::from_weights(7, weights, 0.2));
  ResumeResult resumed =
      resume_service({.num_actions = 3, .dim = dim, .seed = seed}, store);
  ASSERT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.snapshot_id, 7u);

  Decider& a = direct.add_decider();
  Decider& b = resumed.service->add_decider();
  util::Rng ctx_rng(1234);
  std::vector<double> x(dim);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = ctx_rng.uniform();
    const Decision da = a.decide(x);
    const Decision db = b.decide(x);
    a.log_reward(0.5);
    b.log_reward(0.5);
    ASSERT_EQ(da.action, db.action) << "decision " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(da.propensity),
              std::bit_cast<std::uint64_t>(db.propensity));
    ASSERT_EQ(da.snapshot_id, db.snapshot_id);
  }
  // The logged streams match field for field as well.
  std::vector<DecisionRecord> ra, rb;
  direct.drain([&ra](const DecisionRecord& r) { ra.push_back(r); });
  resumed.service->drain([&rb](const DecisionRecord& r) { rb.push_back(r); });
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].action, rb[i].action);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ra[i].propensity),
              std::bit_cast<std::uint64_t>(rb[i].propensity));
    EXPECT_EQ(ra[i].snapshot_id, rb[i].snapshot_id);
    EXPECT_EQ(ra[i].time, rb[i].time);
  }
}

TEST_F(PersistTest, TrainerPersistsEveryPublish) {
  SnapshotStore store({.dir = dir_});
  DecisionService service({.num_actions = 3, .dim = 2, .seed = 77},
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  SnapshotTrainer trainer(service,
                          {.epsilon = 0.1,
                           .min_rows = 32,
                           .reward_range = {0, 1},
                           .store = &store});
  util::Rng rng(55);
  double ctx[2];
  for (int i = 0; i < 400; ++i) {
    ctx[0] = rng.uniform();
    ctx[1] = rng.uniform();
    const Decision dec = d.decide(std::span<const double>(ctx, 2));
    d.log_reward(dec.action == 2 ? 0.9 : 0.1);
  }
  trainer.collect();
  const std::uint64_t id = trainer.train_and_publish();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(trainer.persisted(), 1u);
  EXPECT_EQ(trainer.persist_failures(), 0u);

  // What landed on disk is byte-for-byte the published snapshot.
  SnapshotStore::LoadResult loaded = store.load_current(3, 2);
  ASSERT_NE(loaded.snapshot, nullptr);
  EXPECT_TRUE(loaded.from_current);
  EXPECT_EQ(loaded.snapshot->id(), 2u);
  const SnapshotRef live = d.snapshot();
  EXPECT_EQ(loaded.snapshot->serialize(), live->serialize());
}

}  // namespace
}  // namespace harvest::serve
