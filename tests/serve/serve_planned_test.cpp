// Tests of the planned snapshot kind (the serving side of design/ logging
// plans) and of the batched decide path:
//  - decide() under a plan draws from the stratum's row with the row's
//    probability as the logged propensity, bit-exact;
//  - planned snapshots serialize under their own magic, round-trip
//    bit-identically, and reject malformed bytes — while eps-greedy bytes
//    are unchanged from v1;
//  - decide_batch() produces a record stream and rng state bit-identical
//    to the equivalent sequence of decide() calls.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace harvest::serve {
namespace {

constexpr std::size_t kActions = 3;
constexpr std::size_t kDim = 2;

/// Reference weights: action a scores a-dependent linear functions so each
/// stratum is reachable. Rows (bias, w0, w1).
std::vector<double> test_weights() {
  return {0.1, 1.0, 0.0,     // action 0: 0.1 + x0
          -0.1, 0.0, 1.5,    // action 1: 1.5*x1 - 0.1
          0.9, -1.0, 0.0};   // action 2: 0.9 - x0
}

/// A plan with three distinct, floor-respecting rows.
std::vector<double> test_plan() {
  return {0.8, 0.15, 0.05,
          0.1, 0.8,  0.1,
          0.25, 0.05, 0.7};
}

TEST(PlannedSnapshotTest, DecideDrawsFromStratumRowWithExactPropensity) {
  const PolicySnapshot snap(7, kActions, kDim, test_weights(), test_plan());
  EXPECT_EQ(snap.kind(), SnapshotKind::kPlanned);
  const std::vector<double> plan = test_plan();

  util::Rng rng(101);
  std::vector<std::vector<int>> counts(kActions, std::vector<int>(kActions));
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    const double ctx[kDim] = {rng.uniform(), rng.uniform()};
    const std::span<const double> c(ctx, kDim);
    const std::size_t s = snap.greedy(c);
    const Decision d = snap.decide(c, rng);
    ASSERT_LT(d.action, kActions);
    // The logged propensity must be EXACTLY the plan entry — this is the
    // number the future harvest divides by.
    EXPECT_EQ(d.propensity, plan[s * kActions + d.action]);
    EXPECT_EQ(d.snapshot_id, 7u);
    ++counts[s][d.action];
    // probability() agrees with the plan row for every action.
    for (core::ActionId a = 0; a < kActions; ++a) {
      EXPECT_EQ(snap.probability(c, a), plan[s * kActions + a]);
    }
  }
  // Empirical frequencies track the planned distribution (loose 3-sigma-ish
  // bound; each stratum sees thousands of draws).
  for (std::size_t s = 0; s < kActions; ++s) {
    int total = 0;
    for (int c : counts[s]) total += c;
    ASSERT_GT(total, 1000) << "stratum " << s << " never materialized";
    for (std::size_t a = 0; a < kActions; ++a) {
      const double expected = plan[s * kActions + a];
      const double observed =
          static_cast<double>(counts[s][a]) / static_cast<double>(total);
      EXPECT_NEAR(observed, expected,
                  4 * std::sqrt(expected * (1 - expected) / total) + 1e-3)
          << "stratum " << s << " action " << a;
    }
  }
}

TEST(PlannedSnapshotTest, SerializeRoundTripsUnderOwnMagic) {
  const PolicySnapshot snap(9, kActions, kDim, test_weights(), test_plan());
  const std::string bytes = snap.serialize();
  // Planned snapshots use their own magic; eps-greedy bytes keep v1's, so
  // persisted eps-greedy stores stay readable byte for byte.
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes.substr(0, 4), "SNP2");
  const PolicySnapshot eps(9, kActions, kDim, test_weights(), 0.2);
  EXPECT_EQ(eps.serialize().substr(0, 4), "SNAP");

  const auto restored = PolicySnapshot::deserialize(bytes);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->kind(), SnapshotKind::kPlanned);
  EXPECT_EQ(restored->id(), 9u);
  EXPECT_TRUE(restored->verify_integrity());
  EXPECT_EQ(restored->serialize(), bytes);
  // The restored snapshot decides identically.
  util::Rng rng_a(55), rng_b(55);
  for (int i = 0; i < 200; ++i) {
    const double ctx[kDim] = {0.01 * i, 1.0 - 0.01 * i};
    const Decision a = snap.decide(std::span<const double>(ctx, kDim), rng_a);
    const Decision b =
        restored->decide(std::span<const double>(ctx, kDim), rng_b);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.propensity, b.propensity);
  }
}

TEST(PlannedSnapshotTest, DeserializeRejectsMalformedPlannedBytes) {
  const PolicySnapshot snap(3, kActions, kDim, test_weights(), test_plan());
  const std::string bytes = snap.serialize();
  // Truncation.
  EXPECT_THROW(PolicySnapshot::deserialize(bytes.substr(0, bytes.size() - 8)),
               std::invalid_argument);
  // Corrupt a plan probability into an invalid value (> 1): the planned
  // constructor validation must refuse the payload.
  std::string bad = bytes;
  const double two = 2.0;
  // Plan doubles are the last kActions*kActions*8 bytes.
  std::memcpy(bad.data() + bad.size() - sizeof(double), &two, sizeof(double));
  EXPECT_THROW(PolicySnapshot::deserialize(bad), std::invalid_argument);
}

TEST(PlannedSnapshotTest, ConstructorValidatesPlanRows) {
  // Row not summing to 1.
  std::vector<double> bad = test_plan();
  bad[0] += 0.2;
  EXPECT_THROW(PolicySnapshot(1, kActions, kDim, test_weights(), bad),
               std::invalid_argument);
  // Zero propensity (unharvestable).
  bad = test_plan();
  bad[4] += bad[3];
  bad[3] = 0.0;
  EXPECT_THROW(PolicySnapshot(1, kActions, kDim, test_weights(), bad),
               std::invalid_argument);
  // Wrong geometry.
  bad = test_plan();
  bad.pop_back();
  EXPECT_THROW(PolicySnapshot(1, kActions, kDim, test_weights(), bad),
               std::invalid_argument);
}

// ---- decide_batch ---------------------------------------------------------

std::vector<double> drain_signature(DecisionService& service) {
  std::vector<double> sig;
  service.drain([&sig](const DecisionRecord& rec) {
    sig.push_back(static_cast<double>(rec.action));
    sig.push_back(rec.propensity);
    // NaN rewards (flushed-unlabeled) normalize to one bit pattern for
    // comparison; real rewards compare exactly.
    sig.push_back(std::isnan(rec.reward) ? -1234.5 : rec.reward);
    sig.push_back(static_cast<double>(rec.snapshot_id));
    for (std::uint32_t d = 0; d < rec.dim; ++d) sig.push_back(rec.context[d]);
  });
  return sig;
}

TEST(DecideBatchTest, RecordsBitIdenticalToSequentialDecides) {
  // Two identically seeded services over the same context stream: one
  // decides one by one, the other in uneven batches. Decisions, logged
  // records, counters, and the decider rng stream must match exactly.
  const auto make_service = [] {
    return std::make_unique<DecisionService>(
        DecisionService::Options{.num_actions = kActions, .dim = kDim,
                                 .log_capacity = 1 << 12, .seed = 777},
        PolicySnapshot::from_weights(
            1,
            {{0.1, 1.0, 0.0}, {0.5, 0.0, 0.0}, {0.9, -1.0, 0.0}}, 0.25));
  };
  auto seq_service = make_service();
  auto batch_service = make_service();
  Decider& seq = seq_service->add_decider();
  Decider& batch = batch_service->add_decider();

  constexpr std::size_t kTotal = 1000;
  util::Rng ctx_rng(888);
  std::vector<double> contexts(kTotal * kDim);
  for (double& v : contexts) v = ctx_rng.uniform();

  std::vector<Decision> seq_out(kTotal), batch_out(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    seq_out[i] = seq.decide(
        std::span<const double>(contexts.data() + i * kDim, kDim));
  }
  // Uneven chunk sizes cover batch=1 and batches spanning ring wraps.
  const std::size_t chunks[] = {1, 7, 64, 256, kTotal};
  std::size_t done = 0;
  for (std::size_t c = 0; done < kTotal; ++c) {
    const std::size_t n = std::min(chunks[c % 5], kTotal - done);
    batch.decide_batch(
        std::span<const double>(contexts.data() + done * kDim, n * kDim),
        std::span<Decision>(batch_out.data() + done, n));
    done += n;
  }

  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seq_out[i].action, batch_out[i].action) << "i=" << i;
    EXPECT_EQ(seq_out[i].propensity, batch_out[i].propensity) << "i=" << i;
    EXPECT_EQ(seq_out[i].snapshot_id, batch_out[i].snapshot_id) << "i=" << i;
  }
  EXPECT_EQ(seq.decided(), batch.decided());
  EXPECT_EQ(seq.logged(), batch.logged());
  EXPECT_EQ(seq.dropped(), batch.dropped());
  // Both leave their last decision staged; log it so the streams flush
  // completely, then compare the full record streams.
  seq.log_reward(0.5);
  batch.log_reward(0.5);
  EXPECT_EQ(drain_signature(*seq_service), drain_signature(*batch_service));
  // Post-batch rng states line up: the next decision matches too.
  const double tail[kDim] = {0.33, 0.66};
  const Decision ds = seq.decide(std::span<const double>(tail, kDim));
  const Decision db = batch.decide(std::span<const double>(tail, kDim));
  EXPECT_EQ(ds.action, db.action);
  EXPECT_EQ(ds.propensity, db.propensity);
  seq_service->reclaim_all();
  batch_service->reclaim_all();
}

TEST(DecideBatchTest, EmptyBatchIsANoOp) {
  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 8,
       .seed = 5},
      PolicySnapshot::uniform(1, kActions, kDim));
  Decider& decider = service.add_decider();
  decider.decide_batch(std::span<const double>(), std::span<Decision>());
  EXPECT_EQ(decider.decided(), 0u);
}

TEST(DecideBatchTest, WorksWithPlannedSnapshots) {
  // The batched path and the planned kind compose: propensities in the
  // batch output are exact plan entries.
  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 10,
       .seed = 99},
      PolicySnapshot::planned(4, kActions, kDim, test_weights(), test_plan()));
  Decider& decider = service.add_decider();
  const std::vector<double> plan = test_plan();

  util::Rng ctx_rng(100);
  constexpr std::size_t kN = 300;
  std::vector<double> contexts(kN * kDim);
  for (double& v : contexts) v = ctx_rng.uniform();
  std::vector<Decision> out(kN);
  decider.decide_batch(std::span<const double>(contexts),
                       std::span<Decision>(out));
  const SnapshotRef snap = decider.snapshot();
  for (std::size_t i = 0; i < kN; ++i) {
    const std::size_t s = snap->greedy(
        std::span<const double>(contexts.data() + i * kDim, kDim));
    EXPECT_EQ(out[i].propensity, plan[s * kActions + out[i].action]);
  }
  service.reclaim_all();
}

}  // namespace
}  // namespace harvest::serve
