// Property tests for the serve → HLOG → scavenge round trip (the ISSUE's
// bit-exactness requirement) and for the statistical honesty of the logged
// exploration: empirical action frequencies must match the snapshot's
// conditional distribution within a chi-squared bound (the ShardedRng
// chi-squared pattern from tests/par).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "logs/scavenger.h"
#include "par/thread_pool.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "store/dataset.h"
#include "util/rng.h"

namespace harvest::serve {
namespace {

constexpr std::size_t kActions = 3;
constexpr std::size_t kDim = 3;

std::unique_ptr<const PolicySnapshot> test_snapshot(double epsilon) {
  util::Rng rng(101);
  std::vector<std::vector<double>> w(kActions,
                                     std::vector<double>(kDim + 1));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform(-1, 1);
  }
  return PolicySnapshot::from_weights(4, w, epsilon);
}

store::Schema serve_schema() {
  store::Schema schema;
  schema.decision_event = "serve";
  for (std::size_t i = 0; i < kDim; ++i) {
    schema.context_fields.push_back("x" + std::to_string(i));
  }
  schema.action_field = "action";
  schema.reward_field = "reward";
  schema.propensity_field = "propensity";
  schema.num_actions = kActions;
  schema.reward_lo = 0;
  schema.reward_hi = 1;
  return schema;
}

logs::ScavengeSpec serve_spec() {
  const store::Schema schema = serve_schema();
  logs::ScavengeSpec spec;
  spec.decision_event = schema.decision_event;
  spec.context_fields = schema.context_fields;
  spec.action_field = schema.action_field;
  spec.reward_field = schema.reward_field;
  spec.propensity_field = schema.propensity_field;
  spec.reward_transform = [](double r) { return r; };
  spec.num_actions = schema.num_actions;
  spec.reward_range = {schema.reward_lo, schema.reward_hi};
  return spec;
}

/// Serves `n` decisions on one decider, drains them into both an in-memory
/// vector and an HLOG dataset directory.
std::vector<DecisionRecord> serve_and_write(const std::string& dir,
                                            std::size_t n,
                                            std::uint64_t seed) {
  DecisionService service(
      {.num_actions = kActions, .dim = kDim,
       .log_capacity = std::max<std::size_t>(n * 2, 8), .seed = seed},
      test_snapshot(0.3));
  Decider& decider = service.add_decider();
  util::Rng ctx_rng(seed + 1);
  util::Rng reward_rng(seed + 2);
  double ctx[kDim];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) ctx[d] = ctx_rng.uniform();
    decider.decide(std::span<const double>(ctx, kDim));
    decider.log_reward(reward_rng.uniform());
  }
  std::vector<DecisionRecord> records;
  store::DatasetWriter writer(dir, serve_schema());
  service.drain([&](const DecisionRecord& rec) {
    records.push_back(rec);
    writer.add(rec.time, std::span<const double>(rec.context, rec.dim),
               rec.action, rec.reward, rec.propensity);
  });
  writer.finish();
  EXPECT_EQ(records.size(), n);
  EXPECT_EQ(service.dropped_total(), 0u);
  return records;
}

TEST(ServeRoundTripTest, ScavengeReproducesTuplesBitExactly) {
  const std::string dir =
      ::testing::TempDir() + "serve_roundtrip_hlog";
  std::filesystem::remove_all(dir);
  constexpr std::size_t kN = 4000;
  const std::vector<DecisionRecord> records =
      serve_and_write(dir, kN, /*seed=*/55);

  const auto snapshot = test_snapshot(0.3);
  // The scavenged tuples must be bit-identical at any scan parallelism.
  for (const std::size_t threads : {1u, 8u}) {
    par::set_default_threads(threads);
    const store::Dataset dataset = store::Dataset::open(dir);
    const logs::ScavengeResult result =
        logs::scavenge(dataset, serve_spec());
    ASSERT_EQ(result.data.size(), kN) << "threads=" << threads;
    EXPECT_EQ(result.total_dropped(), 0u);
    for (std::size_t i = 0; i < kN; ++i) {
      const core::ExplorationPoint& point = result.data[i];
      const DecisionRecord& rec = records[i];
      // Bit-exact (action, propensity) — plus reward and context, which
      // ride the same columns.
      ASSERT_EQ(point.action, rec.action) << "row " << i;
      ASSERT_EQ(point.propensity, rec.propensity) << "row " << i;
      ASSERT_EQ(point.reward, rec.reward) << "row " << i;
      ASSERT_EQ(point.context.size(), kDim);
      for (std::size_t d = 0; d < kDim; ++d) {
        ASSERT_EQ(point.context[d], rec.context[d]) << "row " << i;
      }
      // The stored propensity is exactly the snapshot's conditional
      // probability of the logged action in the logged context.
      ASSERT_EQ(point.propensity,
                snapshot->probability(point.context.values(), point.action))
          << "row " << i;
    }
  }
  par::set_default_threads(1);
}

TEST(ServeExplorationTest, ActionFrequenciesMatchSnapshotDistribution) {
  // Chi-squared goodness of fit of observed action counts against the
  // snapshot's decide() distribution, expectation accumulated per context.
  const auto snapshot = test_snapshot(0.5);
  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 16,
       .seed = 99},
      test_snapshot(0.5));
  Decider& decider = service.add_decider();

  constexpr std::size_t kN = 30000;
  std::vector<double> expected(kActions, 0.0);
  std::vector<double> observed(kActions, 0.0);
  util::Rng ctx_rng(123);
  double ctx[kDim];
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) ctx[d] = ctx_rng.uniform();
    const std::span<const double> span(ctx, kDim);
    const Decision dec = decider.decide(span);
    decider.log_reward(0.0);
    observed[dec.action] += 1.0;
    for (std::size_t a = 0; a < kActions; ++a) {
      expected[a] += snapshot->probability(span, static_cast<core::ActionId>(a));
    }
    if ((i & 0xFFF) == 0) service.drain([](const DecisionRecord&) {});
  }
  double chi2 = 0.0;
  for (std::size_t a = 0; a < kActions; ++a) {
    ASSERT_GT(expected[a], 0.0);
    const double diff = observed[a] - expected[a];
    chi2 += diff * diff / expected[a];
  }
  // df = 2; P(chi2 > 20) ~ 5e-5. Generous so the test is not flaky, tight
  // enough to catch a propensity/decide mismatch (which shows up as
  // chi2 in the hundreds).
  EXPECT_LT(chi2, 20.0) << "observed action frequencies diverge from the "
                           "snapshot's exploration distribution";
}

TEST(ServeExplorationTest, LoggedPropensitiesNeverBelowFloor) {
  const double eps = 0.2;
  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 14,
       .seed = 7},
      test_snapshot(eps));
  Decider& decider = service.add_decider();
  util::Rng ctx_rng(8);
  double ctx[kDim];
  for (int i = 0; i < 5000; ++i) {
    for (std::size_t d = 0; d < kDim; ++d) ctx[d] = ctx_rng.uniform();
    decider.decide_logged(std::span<const double>(ctx, kDim), 0.5);
  }
  double min_p = 1.0;
  service.drain([&min_p](const DecisionRecord& rec) {
    min_p = std::min(min_p, rec.propensity);
  });
  // Harvestability (Eq. 1): every logged propensity >= eps / |A|.
  EXPECT_GE(min_p, eps / static_cast<double>(kActions));
}

}  // namespace
}  // namespace harvest::serve
