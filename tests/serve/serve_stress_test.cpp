// Concurrency torture for the snapshot swap: N decider threads hammering
// decide() while a publisher swaps snapshots at high frequency and a
// drainer collects the decision stream. Run under the ci.sh TSAN sub-build.
//
// Invariants proved here:
//  - no torn reads: every hazard-acquired snapshot passes verify_integrity
//    (construction-time checksum over all weight bytes + liveness canary);
//  - provenance: every logged tuple's snapshot_id names a snapshot that was
//    actually published, and per decider the ids are monotone (a decider
//    can never observe an older snapshot after a newer one);
//  - safe reclamation: a snapshot is never freed while a reader holds it
//    (the canary check would fail), and after quiescence every retired
//    snapshot is reclaimed — the alive count returns to exactly one;
//  - exact accounting under concurrency: drained + dropped == decided.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace harvest::serve {
namespace {

constexpr std::size_t kActions = 3;
constexpr std::size_t kDim = 4;

std::unique_ptr<const PolicySnapshot> make_snapshot(std::uint64_t id,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> w(kActions,
                                     std::vector<double>(kDim + 1));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform(-1, 1);
  }
  return PolicySnapshot::from_weights(id, w, 0.1);
}

TEST(ServeStressTest, SwapTortureNoTornReadsNoUseAfterFree) {
  const std::uint64_t alive_before = PolicySnapshot::alive_count();
  constexpr std::size_t kDeciders = 4;
  constexpr std::size_t kDecisionsPerThread = 60000;

  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 14,
       .seed = 1234},
      make_snapshot(1, 1));
  std::vector<Decider*> deciders;
  for (std::size_t t = 0; t < kDeciders; ++t) {
    deciders.push_back(&service.add_decider());
  }

  std::atomic<bool> stop_publisher{false};
  std::atomic<std::uint64_t> integrity_failures{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kDeciders; ++t) {
    threads.emplace_back([&, t] {
      Decider& d = *deciders[t];
      util::Rng ctx_rng(9000 + t);
      double ctx[kDim];
      std::uint64_t last_id = 0;
      for (std::size_t i = 0; i < kDecisionsPerThread; ++i) {
        for (std::size_t k = 0; k < kDim; ++k) ctx[k] = ctx_rng.uniform();
        const Decision dec =
            d.decide_logged(std::span<const double>(ctx, kDim), 0.5);
        // Monotone provenance: a decider never travels back in time.
        if (dec.snapshot_id < last_id) {
          integrity_failures.fetch_add(1, std::memory_order_relaxed);
        }
        last_id = dec.snapshot_id;
        if ((i & 0x3FF) == 0) {
          // Periodically hold the snapshot across publisher swaps and
          // verify it is neither torn nor freed.
          const SnapshotRef ref = d.snapshot();
          if (!ref->verify_integrity()) {
            integrity_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::thread publisher([&] {
    std::uint64_t next_id = 2;
    while (!stop_publisher.load(std::memory_order_acquire)) {
      service.publish(make_snapshot(next_id, next_id));
      ++next_id;
      // No sleep: swap as fast as the deciders decide. publish() already
      // reclaims opportunistically.
    }
  });

  std::atomic<bool> stop_drainer{false};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::uint64_t> bad_provenance{0};
  std::vector<std::uint64_t> last_seen(kDeciders, 0);
  std::thread drainer([&] {
    const auto check = [&](const DecisionRecord& rec) {
      drained.fetch_add(1, std::memory_order_relaxed);
      if (!service.was_published(rec.snapshot_id) ||
          rec.snapshot_id < last_seen[rec.decider]) {
        bad_provenance.fetch_add(1, std::memory_order_relaxed);
      }
      last_seen[rec.decider] = rec.snapshot_id;
    };
    while (!stop_drainer.load(std::memory_order_acquire)) {
      service.drain(check);
      std::this_thread::yield();
    }
    service.drain(check);  // final sweep after deciders stopped
  });

  for (auto& t : threads) t.join();
  stop_publisher.store(true, std::memory_order_release);
  publisher.join();
  stop_drainer.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_EQ(integrity_failures.load(), 0u);
  EXPECT_EQ(bad_provenance.load(), 0u);
  EXPECT_GT(service.swaps(), 0u);

  // Exact accounting: every decision either drained or counted as dropped.
  const std::uint64_t decided = service.decided_total();
  EXPECT_EQ(decided, kDeciders * kDecisionsPerThread);
  EXPECT_EQ(drained.load() + service.dropped_total(), decided);

  // Quiesced: every retired snapshot must now be reclaimable, leaving
  // exactly the current snapshot alive.
  service.reclaim_all();
  EXPECT_EQ(service.retired_count(), 0u);
  EXPECT_EQ(PolicySnapshot::alive_count(), alive_before + 1);
}

TEST(ServeStressTest, ConcurrentDrainersNeverDoubleCount) {
  constexpr std::size_t kDeciders = 2;
  constexpr std::size_t kDecisionsPerThread = 40000;
  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 12,
       .seed = 77},
      make_snapshot(1, 5));
  std::vector<Decider*> deciders;
  for (std::size_t t = 0; t < kDeciders; ++t) {
    deciders.push_back(&service.add_decider());
  }

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kDeciders; ++t) {
    workers.emplace_back([&, t] {
      util::Rng ctx_rng(100 + t);
      double ctx[kDim];
      for (std::size_t i = 0; i < kDecisionsPerThread; ++i) {
        for (std::size_t k = 0; k < kDim; ++k) ctx[k] = ctx_rng.uniform();
        deciders[t]->decide_logged(std::span<const double>(ctx, kDim), 1.0);
      }
    });
  }

  // Two drainers race over the same rings; the per-ring consumer mutex must
  // serialize them so no record is seen twice or skipped.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drained{0};
  std::vector<std::thread> drainers;
  for (int i = 0; i < 2; ++i) {
    drainers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto stats = service.drain([](const DecisionRecord&) {});
        drained.fetch_add(stats.drained, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& d : drainers) d.join();
  const auto final_stats = service.drain([](const DecisionRecord&) {});
  drained.fetch_add(final_stats.drained, std::memory_order_relaxed);

  EXPECT_EQ(drained.load() + service.dropped_total(),
            kDeciders * kDecisionsPerThread);
}

TEST(ServeStressTest, PublishersAndReclaimersRace) {
  const std::uint64_t alive_before = PolicySnapshot::alive_count();
  DecisionService service(
      {.num_actions = kActions, .dim = kDim, .log_capacity = 1 << 10,
       .seed = 3},
      make_snapshot(1, 9));
  Decider& decider = service.add_decider();

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    util::Rng ctx_rng(55);
    double ctx[kDim];
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t k = 0; k < kDim; ++k) ctx[k] = ctx_rng.uniform();
      decider.decide_logged(std::span<const double>(ctx, kDim), 0.0);
    }
  });

  std::atomic<std::uint64_t> next_id{2};
  std::vector<std::thread> publishers;
  for (int p = 0; p < 2; ++p) {
    publishers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const std::uint64_t id =
            next_id.fetch_add(1, std::memory_order_relaxed);
        service.publish(make_snapshot(id, id));
      }
    });
  }
  std::thread reclaimer([&] {
    for (int i = 0; i < 2000; ++i) {
      service.try_reclaim();
      std::this_thread::yield();
    }
  });
  for (auto& p : publishers) p.join();
  reclaimer.join();
  stop.store(true, std::memory_order_release);
  worker.join();
  service.drain([](const DecisionRecord&) {});

  EXPECT_EQ(service.swaps(), 1000u);
  service.reclaim_all();
  EXPECT_EQ(PolicySnapshot::alive_count(), alive_before + 1);
}

}  // namespace
}  // namespace harvest::serve
