// Unit tests for the online decision service: snapshot semantics, exact
// propensities, ring accounting, hazard-protected reclamation, the trainer,
// and the zero-allocation guarantee of the decide path (the allocation-
// counting gate this binary links via harvest_allocgate).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/policies/greedy.h"
#include "serve/alloc_gate.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/trainer.h"
#include "util/rng.h"

namespace harvest::serve {
namespace {

std::vector<std::vector<double>> random_weights(std::size_t num_actions,
                                                std::size_t dim,
                                                util::Rng& rng) {
  std::vector<std::vector<double>> w(num_actions,
                                     std::vector<double>(dim + 1));
  for (auto& row : w) {
    for (auto& v : row) v = rng.uniform(-1, 1);
  }
  return w;
}

TEST(PolicySnapshotTest, GreedyMatchesLinearPolicy) {
  util::Rng rng(7);
  const auto weights = random_weights(5, 6, rng);
  const auto snap = PolicySnapshot::from_weights(1, weights, 0.0);
  const core::LinearPolicy policy(weights);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(6);
    for (auto& v : x) v = rng.uniform(-2, 2);
    EXPECT_EQ(snap->greedy(x), policy.choose(core::FeatureVector(x)));
  }
}

TEST(PolicySnapshotTest, DecidePropensityIsExact) {
  util::Rng rng(8);
  const double eps = 0.3;
  const std::size_t k = 4;
  const auto snap =
      PolicySnapshot::from_weights(2, random_weights(k, 3, rng), eps);
  util::Rng draw(9);
  int explored = 0;
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    const Decision d = snap->decide(x, draw);
    // The logged propensity is exactly pi(a|x).
    EXPECT_EQ(d.propensity, snap->probability(x, d.action));
    EXPECT_GE(d.propensity, eps / static_cast<double>(k));
    EXPECT_EQ(d.snapshot_id, 2u);
    if (d.action != snap->greedy(x)) ++explored;
  }
  // eps * (k-1)/k of decisions should leave the greedy action; loose bound.
  EXPECT_GT(explored, 200);
  EXPECT_LT(explored, 800);
}

TEST(PolicySnapshotTest, UniformSnapshotHasUniformPropensity) {
  const auto snap = PolicySnapshot::uniform(1, 5, 2);
  util::Rng rng(10);
  std::vector<double> x{0.1, 0.9};
  for (int i = 0; i < 100; ++i) {
    const Decision d = snap->decide(x, rng);
    EXPECT_EQ(d.propensity, 1.0 / 5.0);
  }
}

TEST(PolicySnapshotTest, SerializeIsDeterministicAndSensitive) {
  util::Rng rng(11);
  const auto weights = random_weights(3, 4, rng);
  const auto a = PolicySnapshot::from_weights(5, weights, 0.25);
  const auto b = PolicySnapshot::from_weights(5, weights, 0.25);
  EXPECT_EQ(a->serialize(), b->serialize());
  auto perturbed = weights;
  perturbed[1][2] += 1e-15;
  const auto c = PolicySnapshot::from_weights(5, perturbed, 0.25);
  EXPECT_NE(a->serialize(), c->serialize());
}

TEST(PolicySnapshotTest, ConstructorValidates) {
  EXPECT_THROW(PolicySnapshot(1, 0, 2, {}, 0.1), std::invalid_argument);
  EXPECT_THROW(PolicySnapshot(1, 2, 2, {1, 2, 3}, 0.1),
               std::invalid_argument);
  EXPECT_THROW(PolicySnapshot(1, 1, 0, {1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(PolicySnapshot(1, 1, 0, {1.0}, -0.1), std::invalid_argument);
}

TEST(PolicySnapshotTest, IntegrityAndAliveCount) {
  const std::uint64_t before = PolicySnapshot::alive_count();
  {
    const auto snap = PolicySnapshot::uniform(1, 3, 2);
    EXPECT_TRUE(snap->verify_integrity());
    EXPECT_EQ(PolicySnapshot::alive_count(), before + 1);
  }
  EXPECT_EQ(PolicySnapshot::alive_count(), before);
}

DecisionService::Options small_service(std::size_t log_capacity = 1 << 10) {
  return {.num_actions = 3, .dim = 2, .log_capacity = log_capacity,
          .seed = 77};
}

TEST(DecisionServiceTest, ConstructorValidatesGeometry) {
  EXPECT_THROW(DecisionService({.num_actions = 0, .dim = 2},
                               PolicySnapshot::uniform(1, 3, 2)),
               std::invalid_argument);
  EXPECT_THROW(DecisionService({.num_actions = 3, .dim = 99},
                               PolicySnapshot::uniform(1, 3, 99)),
               std::invalid_argument);
  EXPECT_THROW(DecisionService({.num_actions = 3, .dim = 2},
                               PolicySnapshot::uniform(1, 4, 2)),
               std::invalid_argument);
  DecisionService service(small_service(), PolicySnapshot::uniform(1, 3, 2));
  EXPECT_THROW(service.publish(PolicySnapshot::uniform(2, 3, 5)),
               std::invalid_argument);
}

TEST(DecisionServiceTest, RingAccountingIsExact) {
  // Capacity 8: 100 logged decisions -> 8 in the ring, 92 dropped, zero
  // silent losses.
  DecisionService service(small_service(8),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  const std::vector<double> x{0.5, 0.5};
  for (int i = 0; i < 100; ++i) d.decide_logged(x, 1.0);
  EXPECT_EQ(d.decided(), 100u);
  EXPECT_EQ(d.logged(), 8u);
  EXPECT_EQ(d.dropped(), 92u);
  EXPECT_EQ(d.logged() + d.dropped(), d.decided());

  std::size_t drained = 0;
  const ServeDrainStats stats =
      service.drain([&drained](const DecisionRecord&) { ++drained; });
  EXPECT_EQ(stats.drained, 8u);
  EXPECT_EQ(drained, 8u);
  EXPECT_EQ(stats.dropped_total, 92u);
  EXPECT_EQ(stats.orphaned_rewards, 0u);

  // Ring empty again: the next decisions all fit.
  for (int i = 0; i < 8; ++i) d.decide_logged(x, 1.0);
  EXPECT_EQ(d.dropped(), 92u);

  // Conservation with orphans in the mix: a reward arriving with nothing
  // staged is counted as orphaned and changes no other ledger. Every
  // decision is still accounted for exactly once.
  d.log_reward(0.25);  // nothing staged: decide_logged consumed it
  d.log_reward(0.75);
  EXPECT_EQ(d.orphaned(), 2u);
  EXPECT_EQ(d.decided(), 108u);
  const ServeDrainStats stats2 = service.drain([](const DecisionRecord&) {});
  EXPECT_EQ(stats2.orphaned_rewards, 2u);
  EXPECT_EQ(stats2.dropped_total, 92u);
  // decided == pushed + dropped (no staged record pending).
  EXPECT_EQ(d.decided(), d.logged() + d.dropped());
}

TEST(DecisionServiceTest, LateRewardAfterNaNFlushIsOrphaned) {
  // The exact satellite scenario: decide, never report, decide again (the
  // staged record flushes as NaN), then the late reward arrives. It must be
  // counted, not silently ignored.
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  const std::vector<double> x{0.1, 0.2};
  d.decide(x);
  d.decide(x);          // flushes the first as NaN
  d.log_reward(0.5);    // labels the second
  d.log_reward(0.9);    // late: its record is already gone
  EXPECT_EQ(d.orphaned(), 1u);
  std::vector<DecisionRecord> records;
  const ServeDrainStats stats = service.drain(
      [&records](const DecisionRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(std::isnan(records[0].reward));
  EXPECT_EQ(records[1].reward, 0.5);
  EXPECT_EQ(stats.orphaned_rewards, 1u);
}

TEST(DecisionServiceTest, UnreportedDecisionFlushedAsNaN) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  const std::vector<double> x{0.1, 0.2};
  d.decide(x);          // never reward-labeled
  d.decide(x);          // flushes the first as NaN
  d.log_reward(0.75);   // labels the second
  std::vector<DecisionRecord> records;
  service.drain([&records](const DecisionRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(std::isnan(records[0].reward));
  EXPECT_EQ(records[1].reward, 0.75);
  EXPECT_EQ(records[0].context[0], 0.1);
  EXPECT_EQ(records[0].context[1], 0.2);
}

TEST(DecisionServiceTest, RecordCarriesFullTuple) {
  util::Rng rng(13);
  const auto weights = random_weights(3, 2, rng);
  DecisionService service(small_service(),
                          PolicySnapshot::from_weights(9, weights, 0.2));
  Decider& d = service.add_decider();
  const std::vector<double> x{0.3, 0.8};
  const Decision dec = d.decide_logged(x, 0.6);
  std::vector<DecisionRecord> records;
  service.drain([&records](const DecisionRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].action, dec.action);
  EXPECT_EQ(records[0].propensity, dec.propensity);
  EXPECT_EQ(records[0].snapshot_id, 9u);
  EXPECT_EQ(records[0].dim, 2u);
  EXPECT_EQ(records[0].decider, 0u);
  EXPECT_EQ(records[0].reward, 0.6);
}

TEST(DecisionServiceTest, PublishSwapsAndReclaims) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  EXPECT_EQ(service.current_id(), 1u);
  service.publish(PolicySnapshot::uniform(2, 3, 2));
  EXPECT_EQ(service.current_id(), 2u);
  EXPECT_EQ(service.swaps(), 1u);
  EXPECT_TRUE(service.was_published(1));
  EXPECT_TRUE(service.was_published(2));
  EXPECT_FALSE(service.was_published(3));
  // No deciders hold a hazard: the retired snapshot is reclaimable.
  service.try_reclaim();
  EXPECT_EQ(service.retired_count(), 0u);
  EXPECT_EQ(service.reclaimed(), 1u);
}

TEST(DecisionServiceTest, HeldRefBlocksReclamation) {
  const std::uint64_t baseline = PolicySnapshot::alive_count();
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  {
    const SnapshotRef ref = d.snapshot();
    EXPECT_EQ(ref->id(), 1u);
    service.publish(PolicySnapshot::uniform(2, 3, 2));
    service.try_reclaim();
    // Snapshot 1 is retired but held by the ref: it must stay alive and
    // intact.
    EXPECT_EQ(service.retired_count(), 1u);
    EXPECT_TRUE(ref->verify_integrity());
    EXPECT_EQ(PolicySnapshot::alive_count(), baseline + 2);
  }
  service.try_reclaim();
  EXPECT_EQ(service.retired_count(), 0u);
  EXPECT_EQ(PolicySnapshot::alive_count(), baseline + 1);
}

TEST(DecisionServiceTest, PublishWithMintsSequentialIds) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  const auto make = [](std::uint64_t id) {
    return PolicySnapshot::uniform(id, 3, 2);
  };
  EXPECT_EQ(service.publish_with(make), 2u);
  EXPECT_EQ(service.publish_with(make), 3u);
  // An explicit-id publish advances the internal counter past it.
  service.publish(PolicySnapshot::uniform(10, 3, 2));
  EXPECT_EQ(service.publish_with(make), 11u);
  // A callback that ignores the assigned id is refused.
  EXPECT_THROW(service.publish_with([](std::uint64_t) {
                 return PolicySnapshot::uniform(999, 3, 2);
               }),
               std::invalid_argument);
}

TEST(DecisionServiceTest, RacingPublishersNeverMintDuplicateIds) {
  // The satellite bug: computing current_id() + 1 outside the publish lock
  // let two racing publishers mint the same id. publish_with() assigns the
  // id inside the lock, so every publish gets a distinct one.
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  constexpr int kPerThread = 50;
  std::vector<std::uint64_t> ids(2 * kPerThread, 0);
  std::vector<std::thread> publishers;
  for (int t = 0; t < 2; ++t) {
    publishers.emplace_back([&service, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ids[static_cast<std::size_t>(t * kPerThread + i)] =
            service.publish_with([](std::uint64_t id) {
              return PolicySnapshot::uniform(id, 3, 2);
            });
      }
    });
  }
  for (auto& p : publishers) p.join();
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "duplicate snapshot id minted by racing publishers";
  EXPECT_EQ(ids.front(), 2u);
  EXPECT_EQ(ids.back(), 1u + 2 * kPerThread);
  service.reclaim_all();
}

TEST(DecisionServiceTest, DeciderAcquiresLatestSnapshot) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  const std::vector<double> x{0.5, 0.5};
  EXPECT_EQ(d.decide_logged(x, 0).snapshot_id, 1u);
  service.publish(PolicySnapshot::uniform(7, 3, 2));
  EXPECT_EQ(d.decide_logged(x, 0).snapshot_id, 7u);
}

TEST(SnapshotTrainerTest, CollectSkipsUnlabeledAndBuffersRest) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  SnapshotTrainer trainer(service, {.min_rows = 4});
  const std::vector<double> x{0.2, 0.4};
  d.decide(x);  // unlabeled
  d.decide(x);  // flushes previous as NaN
  d.log_reward(1.0);
  for (int i = 0; i < 5; ++i) d.decide_logged(x, 0.5);
  EXPECT_EQ(trainer.collect(), 7u);
  EXPECT_EQ(trainer.unlabeled_dropped(), 1u);
  EXPECT_EQ(trainer.buffered_rows(), 6u);
}

TEST(SnapshotTrainerTest, TrainAndPublishLearnsTheBetterAction) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  SnapshotTrainer trainer(service,
                          {.epsilon = 0.1, .min_rows = 32,
                           .reward_range = {0, 1}});
  util::Rng rng(21);
  double ctx[2];
  for (int i = 0; i < 600; ++i) {
    ctx[0] = rng.uniform();
    ctx[1] = rng.uniform();
    const Decision dec = d.decide(std::span<const double>(ctx, 2));
    // Action 1 pays best everywhere.
    d.log_reward(dec.action == 1 ? 0.9 : 0.2);
  }
  trainer.collect();
  const std::uint64_t id = trainer.train_and_publish();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(service.current_id(), 2u);
  EXPECT_EQ(trainer.published(), 1u);
  // The retrained snapshot should now pick action 1 greedily.
  const SnapshotRef ref = d.snapshot();
  EXPECT_EQ(ref->epsilon(), 0.1);
  std::vector<double> x{0.5, 0.5};
  EXPECT_EQ(ref->greedy(x), 1u);
}

TEST(SnapshotTrainerTest, IngestSkipsAndCountsDimMismatchedRecords) {
  // A record whose dim disagrees with the service geometry must be skipped
  // and counted, never silently truncated into the training buffer.
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  SnapshotTrainer trainer(service, {.min_rows = 4});
  DecisionRecord rec;
  rec.reward = 0.5;
  rec.propensity = 1.0 / 3.0;
  rec.action = 1;
  rec.dim = 5;  // service dim is 2
  rec.context[0] = 0.1;
  EXPECT_FALSE(trainer.ingest(rec));
  EXPECT_EQ(trainer.dim_mismatch_dropped(), 1u);
  EXPECT_EQ(trainer.buffered_rows(), 0u);
  rec.dim = 2;
  EXPECT_TRUE(trainer.ingest(rec));
  EXPECT_EQ(trainer.dim_mismatch_dropped(), 1u);
  EXPECT_EQ(trainer.buffered_rows(), 1u);
}

TEST(SnapshotTrainerTest, StopReturnsPromptlyMidPeriod) {
  // Regression: the worker used sleep_for(period), so stop() blocked for up
  // to a full period. With the condition-variable wait it returns as soon
  // as the in-flight (here: trivial) iteration finishes.
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  SnapshotTrainer trainer(service, {.min_rows = 1 << 20});
  trainer.start(std::chrono::minutes(10));
  EXPECT_TRUE(trainer.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  trainer.stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(trainer.running());
  // Far below the 10-minute period; generous bound for loaded CI machines.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

TEST(SnapshotTrainerTest, RefusesToTrainOnTooFewRows) {
  DecisionService service(small_service(),
                          PolicySnapshot::uniform(1, 3, 2));
  Decider& d = service.add_decider();
  SnapshotTrainer trainer(service, {.min_rows = 100});
  const std::vector<double> x{0.5, 0.5};
  for (int i = 0; i < 10; ++i) d.decide_logged(x, 1.0);
  trainer.collect();
  EXPECT_EQ(trainer.train_and_publish(), 0u);
  EXPECT_EQ(service.current_id(), 1u);
}

TEST(AllocGateTest, PositiveControlDetectsAllocation) {
  const AllocGate gate;
  auto* p = new int(42);
  EXPECT_GE(gate.delta(), 1u);
  delete p;
}

TEST(AllocGateTest, DecidePathIsZeroAllocation) {
  util::Rng rng(31);
  const auto weights = random_weights(3, 2, rng);
  DecisionService service(small_service(1 << 8),
                          PolicySnapshot::from_weights(1, weights, 0.1));
  Decider& d = service.add_decider();
  double ctx[2];
  // Warm up (first decisions may touch lazily initialized state).
  for (int i = 0; i < 100; ++i) {
    ctx[0] = rng.uniform();
    ctx[1] = rng.uniform();
    d.decide_logged(std::span<const double>(ctx, 2), 0.5);
  }
  service.drain([](const DecisionRecord&) {});
  const AllocGate gate;
  for (int i = 0; i < 10000; ++i) {
    ctx[0] = rng.uniform();
    ctx[1] = rng.uniform();
    d.decide_logged(std::span<const double>(ctx, 2), 0.5);
  }
  EXPECT_EQ(gate.delta(), 0u) << "decide path allocated";
}

}  // namespace
}  // namespace harvest::serve
