#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace harvest::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtEqualTimestamps) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NextTimeAndErrors) {
  EventQueue queue;
  EXPECT_THROW(queue.next_time(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
  EXPECT_THROW(queue.push(1.0, nullptr), std::invalid_argument);
  queue.push(7.5, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 7.5);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator simulator;
  std::vector<double> seen;
  simulator.schedule(2.0, [&] { seen.push_back(simulator.now()); });
  simulator.schedule(1.0, [&] { seen.push_back(simulator.now()); });
  simulator.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(simulator.events_processed(), 2u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator simulator;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) simulator.schedule(1.0, chain);
  };
  simulator.schedule(1.0, chain);
  simulator.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(simulator.now(), 5.0);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(1.0, [&] { ++fired; });
  simulator.schedule(10.0, [&] { ++fired; });
  simulator.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(simulator.now(), 5.0);
  EXPECT_EQ(simulator.events_pending(), 1u);
  simulator.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RejectsPastScheduling) {
  Simulator simulator;
  simulator.schedule(1.0, [] {});
  simulator.run();
  EXPECT_THROW(simulator.schedule(-0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(simulator.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(simulator.run_until(0.5), std::invalid_argument);
}

TEST(SimulatorTest, ClearDropsPending) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(1.0, [&] { ++fired; });
  simulator.clear();
  simulator.run();
  EXPECT_EQ(fired, 0);
}

TEST(MetricTest, RecordsMomentsAndQuantiles) {
  Metric metric;
  for (int i = 1; i <= 1000; ++i) metric.record(static_cast<double>(i));
  EXPECT_EQ(metric.count(), 1000u);
  EXPECT_NEAR(metric.mean(), 500.5, 1e-9);
  EXPECT_NEAR(metric.p50(), 500, 25);
  EXPECT_NEAR(metric.p99(), 990, 20);
}

TEST(MetricRegistryTest, LazyCreationAndLookup) {
  MetricRegistry registry;
  registry.get("latency").record(1.0);
  registry.get("latency").record(3.0);
  registry.get("errors").record(0.0);
  EXPECT_EQ(registry.all().size(), 2u);
  EXPECT_DOUBLE_EQ(registry.get("latency").mean(), 2.0);
}

}  // namespace
}  // namespace harvest::sim
