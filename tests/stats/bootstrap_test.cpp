#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace harvest::stats {
namespace {

TEST(BootstrapTest, MeanIntervalContainsSampleMean) {
  util::Rng rng(3);
  std::vector<double> values;
  double sum = 0;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.normal(2.0, 1.0));
    sum += values.back();
  }
  const double mean = sum / 500;
  const Interval ci = bootstrap_mean_interval(values, 500, 0.05, rng);
  EXPECT_TRUE(ci.contains(mean));
  // Width should be ~ 2*1.96*sigma/sqrt(n) ~ 0.175.
  EXPECT_NEAR(ci.width(), 0.175, 0.06);
}

TEST(BootstrapTest, ReplicateCountRespected) {
  util::Rng rng(4);
  std::vector<double> values{1, 2, 3, 4, 5};
  const IndexStatistic stat = [&](std::span<const std::size_t> idx) {
    double s = 0;
    for (std::size_t i : idx) s += values[i];
    return s / static_cast<double>(idx.size());
  };
  const auto reps = bootstrap_replicates(values.size(), stat, 123, rng);
  EXPECT_EQ(reps.size(), 123u);
}

TEST(BootstrapTest, DegenerateDataGivesPointInterval) {
  util::Rng rng(5);
  const std::vector<double> values(50, 7.0);
  const Interval ci = bootstrap_mean_interval(values, 200, 0.05, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(BootstrapTest, RejectsEmptyInput) {
  util::Rng rng(6);
  const IndexStatistic stat = [](std::span<const std::size_t>) { return 0.0; };
  EXPECT_THROW(bootstrap_replicates(0, stat, 10, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_replicates(10, stat, 0, rng), std::invalid_argument);
}

TEST(BootstrapTest, IndexStatisticSeesResampledIndices) {
  util::Rng rng(7);
  bool saw_duplicate = false;
  const IndexStatistic stat = [&](std::span<const std::size_t> idx) {
    std::vector<bool> seen(idx.size(), false);
    for (std::size_t i : idx) {
      if (seen[i]) saw_duplicate = true;
      seen[i] = true;
    }
    return 0.0;
  };
  bootstrap_replicates(100, stat, 50, rng);
  EXPECT_TRUE(saw_duplicate);  // with-replacement sampling
}

}  // namespace
}  // namespace harvest::stats
