#include "stats/ci.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace harvest::stats {
namespace {

TEST(CiTest, NormalCriticalKnownValues) {
  EXPECT_NEAR(normal_critical(0.05), 1.959964, 1e-4);
  EXPECT_NEAR(normal_critical(0.01), 2.575829, 1e-4);
  EXPECT_NEAR(normal_critical(0.32), 0.994458, 1e-4);
  EXPECT_THROW(normal_critical(0.0), std::invalid_argument);
  EXPECT_THROW(normal_critical(1.0), std::invalid_argument);
}

TEST(CiTest, HoeffdingShrinksWithN) {
  const double h100 = hoeffding_halfwidth(100, 0.05, 0, 1);
  const double h400 = hoeffding_halfwidth(400, 0.05, 0, 1);
  EXPECT_NEAR(h400, h100 / 2.0, 1e-12);  // sqrt(n) scaling
  EXPECT_GT(h100, 0);
}

TEST(CiTest, HoeffdingScalesWithRange) {
  const double unit = hoeffding_halfwidth(50, 0.1, 0, 1);
  const double wide = hoeffding_halfwidth(50, 0.1, -5, 5);
  EXPECT_NEAR(wide, 10 * unit, 1e-12);
}

TEST(CiTest, BernsteinTighterThanHoeffdingForSmallVariance) {
  // With tiny empirical variance and moderate n, Bernstein wins.
  const double bern =
      empirical_bernstein_halfwidth(10000, 0.05, /*variance=*/0.001, 1.0);
  const double hoef = hoeffding_halfwidth(10000, 0.05, 0, 1);
  EXPECT_LT(bern, hoef);
}

TEST(CiTest, IntervalContainsCenter) {
  const Interval i = hoeffding_interval(0.4, 100, 0.05, 0, 1);
  EXPECT_TRUE(i.contains(0.4));
  EXPECT_LT(i.lo, 0.4);
  EXPECT_GT(i.hi, 0.4);
}

TEST(CiTest, WilsonKnownProportion) {
  // 50/100 at 95%: standard Wilson interval approx [0.404, 0.596].
  const Interval i = wilson_interval(50, 100, 0.05);
  EXPECT_NEAR(i.lo, 0.404, 0.005);
  EXPECT_NEAR(i.hi, 0.596, 0.005);
}

TEST(CiTest, WilsonDegenerateCounts) {
  const Interval zero = wilson_interval(0, 20, 0.05);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval all = wilson_interval(20, 20, 0.05);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_LE(all.hi, 1.0 + 1e-12);
  EXPECT_THROW(wilson_interval(21, 20, 0.05), std::invalid_argument);
}

// Coverage property: the Hoeffding interval must contain the true mean in
// at least 1-delta of repeated experiments (it is conservative, so near 1).
class HoeffdingCoverage : public ::testing::TestWithParam<double> {};

TEST_P(HoeffdingCoverage, CoversTrueMean) {
  const double true_p = GetParam();
  util::Rng rng(99);
  const int experiments = 400;
  const int n = 200;
  int covered = 0;
  for (int e = 0; e < experiments; ++e) {
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += rng.bernoulli(true_p) ? 1.0 : 0.0;
    const Interval ci = hoeffding_interval(sum / n, n, 0.05, 0, 1);
    if (ci.contains(true_p)) ++covered;
  }
  EXPECT_GE(static_cast<double>(covered) / experiments, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Proportions, HoeffdingCoverage,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8));

TEST(CiTest, RejectsBadArguments) {
  EXPECT_THROW(hoeffding_halfwidth(0, 0.05, 0, 1), std::invalid_argument);
  EXPECT_THROW(hoeffding_halfwidth(10, 0.0, 0, 1), std::invalid_argument);
  EXPECT_THROW(empirical_bernstein_halfwidth(10, 1.5, 0.1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
