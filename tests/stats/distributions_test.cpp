#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace harvest::stats {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOneAndDecay) {
  const Zipf zipf(100, 1.0);
  double total = 0;
  for (std::size_t i = 0; i < 100; ++i) total += zipf.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(zipf.probability(0), zipf.probability(1));
  EXPECT_GT(zipf.probability(1), zipf.probability(50));
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
}

TEST(ZipfTest, EmpiricalFrequenciesMatch) {
  const Zipf zipf(10, 1.2);
  util::Rng rng(8);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), zipf.probability(i),
                0.01)
        << "i=" << i;
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  const Zipf zipf(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(zipf.probability(i), 0.25, 1e-9);
  }
}

TEST(AliasTableTest, MatchesWeights) {
  const std::vector<double> weights{5.0, 1.0, 0.0, 4.0};
  const AliasTable table(weights);
  util::Rng rng(9);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.4, 0.01);
}

TEST(AliasTableTest, NormalizedProbabilitiesExposed) {
  const std::vector<double> weights{2.0, 2.0, 4.0};
  const AliasTable table(weights);
  EXPECT_NEAR(table.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(table.probability(2), 0.5, 1e-12);
}

TEST(AliasTableTest, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(PoissonProcessTest, MonotoneTimestampsAtExpectedRate) {
  util::Rng rng(10);
  PoissonProcess process(50.0, rng.split());
  double prev = 0;
  double last = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double t = process.next();
    EXPECT_GT(t, prev);
    prev = t;
    last = t;
  }
  // n arrivals should take about n/rate seconds.
  EXPECT_NEAR(last, n / 50.0, n / 50.0 * 0.05);
}

TEST(PoissonProcessTest, RejectsNonPositiveRate) {
  util::Rng rng(11);
  EXPECT_THROW(PoissonProcess(0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
