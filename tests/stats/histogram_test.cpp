#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "stats/quantile.h"
#include "util/rng.h"

namespace harvest::stats {
namespace {

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
  EXPECT_EQ(h.bins()[5], 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, UnderOverflowClampedButCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

TEST(HistogramTest, QuantileApproximatesExact) {
  util::Rng rng(5);
  Histogram h(0.0, 1.0, 200);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    h.add(x);
    all.push_back(x);
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(h.quantile(q), quantile(all, q), 0.02) << "q=" << q;
  }
}

TEST(HistogramTest, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(0.75);
  const std::string text = h.render(10);
  EXPECT_NE(text.find(" 2"), std::string::npos);
  EXPECT_NE(text.find(" 1"), std::string::npos);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogramTest, QuantileOnHeavyTail) {
  util::Rng rng(6);
  LogHistogram h(0.001, 1.3, 64);
  std::vector<double> all;
  for (int i = 0; i < 30000; ++i) {
    const double x = rng.exponential(1.0) * 0.1;
    h.add(x);
    all.push_back(x);
  }
  // Geometric-bucket resolution: within ~35% relative error is expected.
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = quantile(all, q);
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.35) << "q=" << q;
  }
}

TEST(LogHistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 2.0, 8), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 2.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
