// Property test: the P² streaming estimator converges to the exact sample
// quantile across distributions, quantile targets, and seeds. This is the
// guarantee the obs histograms lean on when they report p50/p95/p99 without
// retaining samples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/quantile.h"
#include "util/rng.h"

namespace harvest::stats {
namespace {

/// Absolute P²-vs-exact error normalized by the sample's interquartile-ish
/// spread, so uniform(0,1) and lognormal-style data share one tolerance.
double normalized_error(const std::vector<double>& data, double q,
                        double p2_estimate) {
  const double exact = quantile(data, q);
  const double spread =
      quantile(data, 0.95) - quantile(data, 0.05);
  return std::abs(p2_estimate - exact) / (spread > 0 ? spread : 1.0);
}

TEST(QuantilePropertyTest, P2ConvergesToExactAcrossDistributions) {
  const std::vector<double> targets = {0.1, 0.5, 0.9, 0.99};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (int dist = 0; dist < 3; ++dist) {
      for (const double q : targets) {
        util::Rng rng(seed * 100 + static_cast<std::uint64_t>(dist));
        P2Quantile p2(q);
        std::vector<double> data;
        data.reserve(20000);
        for (int i = 0; i < 20000; ++i) {
          double x = 0;
          switch (dist) {
            case 0: x = rng.uniform(0.0, 1.0); break;
            case 1: x = rng.normal(5.0, 2.0); break;
            default: x = std::exp(rng.normal(0.0, 0.75)); break;
          }
          data.push_back(x);
          p2.add(x);
        }
        // Extreme quantiles of heavy-tailed data are intrinsically noisier
        // for a 5-marker sketch; allow them a wider band.
        const double tolerance = q >= 0.99 ? 0.15 : 0.05;
        EXPECT_LT(normalized_error(data, q, p2.value()), tolerance)
            << "dist " << dist << " q " << q << " seed " << seed;
      }
    }
  }
}

TEST(QuantilePropertyTest, P2IsExactForSmallSamples) {
  // Below 5 observations P² must return the exact order statistic it tracks.
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    P2Quantile p2(0.5);
    std::vector<double> data;
    const std::size_t n = 1 + rng.uniform_index(5);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.uniform(-10.0, 10.0);
      data.push_back(x);
      p2.add(x);
    }
    // The pre-marker phase stores raw samples; its value must lie within the
    // observed range and within one gap of the exact quantile.
    const double lo = *std::min_element(data.begin(), data.end());
    const double hi = *std::max_element(data.begin(), data.end());
    EXPECT_GE(p2.value(), lo);
    EXPECT_LE(p2.value(), hi);
  }
}

TEST(QuantilePropertyTest, P2ErrorShrinksWithSampleSize) {
  // Convergence property: average error over seeds at n=20000 is no worse
  // than at n=500 (allowing a small slack for Monte-Carlo noise).
  const double q = 0.9;
  double err_small = 0, err_large = 0;
  const int kSeeds = 6;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(seed);
    P2Quantile p2(q);
    std::vector<double> data;
    data.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.normal(0.0, 1.0);
      data.push_back(x);
      p2.add(x);
      if (i + 1 == 500) {
        err_small += normalized_error(data, q, p2.value());
      }
    }
    err_large += normalized_error(data, q, p2.value());
  }
  EXPECT_LE(err_large / kSeeds, err_small / kSeeds + 0.01);
}

}  // namespace
}  // namespace harvest::stats
