#include "stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace harvest::stats {
namespace {

TEST(QuantileTest, ExactOnSmallVector) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  // Interpolated between 1 and 2 at q=0.1: pos=0.4.
  EXPECT_NEAR(quantile(v, 0.1), 1.4, 1e-12);
}

TEST(QuantileTest, UnsortedInputHandled) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(QuantileTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(QuantileTest, MultipleQuantilesMatchSingle) {
  util::Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform());
  const std::vector<double> qs{0.05, 0.5, 0.95};
  const auto multi = quantiles(v, qs);
  ASSERT_EQ(multi.size(), 3u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(multi[i], quantile(v, qs[i]));
  }
}

// P2 streaming estimator must converge to the exact quantile on stationary
// input, across distributions and target quantiles.
struct P2Case {
  double q;
  int dist;  // 0 uniform, 1 normal, 2 exponential
};

class P2QuantileProperty : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2QuantileProperty, ConvergesToExactQuantile) {
  const auto [q, dist] = GetParam();
  util::Rng rng(777 + dist);
  P2Quantile p2(q);
  std::vector<double> all;
  const int n = 50000;
  all.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = 0;
    switch (dist) {
      case 0: x = rng.uniform(); break;
      case 1: x = rng.normal(0, 1); break;
      default: x = rng.exponential(1.0); break;
    }
    p2.add(x);
    all.push_back(x);
  }
  const double exact = quantile(all, q);
  const double spread = quantile(all, 0.99) - quantile(all, 0.01);
  EXPECT_NEAR(p2.value(), exact, 0.05 * spread)
      << "q=" << q << " dist=" << dist;
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, P2QuantileProperty,
    ::testing::Values(P2Case{0.5, 0}, P2Case{0.9, 0}, P2Case{0.99, 0},
                      P2Case{0.5, 1}, P2Case{0.95, 1}, P2Case{0.5, 2},
                      P2Case{0.99, 2}));

TEST(P2QuantileTest, ExactForFewSamples) {
  P2Quantile p2(0.5);
  p2.add(3.0);
  EXPECT_DOUBLE_EQ(p2.value(), 3.0);
  p2.add(1.0);
  p2.add(2.0);
  EXPECT_DOUBLE_EQ(p2.value(), 2.0);
}

TEST(P2QuantileTest, EmptyIsNaN) {
  P2Quantile p2(0.9);
  EXPECT_TRUE(std::isnan(p2.value()));
}

TEST(P2QuantileTest, RejectsDegenerateQ) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::stats
