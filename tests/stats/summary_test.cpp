#include "stats/summary.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace harvest::stats {
namespace {

TEST(SummaryTest, EmptySummary) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(SummaryTest, KnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, MergeEqualsSequential) {
  util::Rng rng(1);
  Summary all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
  EXPECT_EQ(b.count(), 2u);
}

TEST(SummaryTest, NumericalStabilityLargeOffset) {
  // Welford should not lose precision with a large common offset.
  Summary s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace harvest::stats
