// Corruption behavior of the HLOG read path: a CRC-damaged block is
// quarantined at block granularity (the rest of its shard still reads),
// the drop lands in the kCorruptBlock ledger class, and damage to the
// trusted sections (header, schema, footer, trailer) is fatal at open.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "logs/scavenger.h"
#include "store/store.h"
#include "util/rng.h"

namespace harvest::store {
namespace {

constexpr std::size_t kRowsPerBlock = 50;
constexpr std::size_t kBlocks = 12;  // 4 shards of 3 blocks

Schema demo_schema() {
  Schema schema;
  schema.decision_event = "decide";
  schema.context_fields = {"x", "y"};
  schema.action_field = "a";
  schema.reward_field = "r";
  schema.num_actions = 4;
  return schema;
}

/// A corpus whose row values encode their own index, so surviving rows can
/// be attributed to blocks after quarantine compaction.
std::string demo_corpus() {
  std::ostringstream out;
  Writer writer(out, demo_schema(),
                {.rows_per_block = kRowsPerBlock, .blocks_per_shard = 3});
  for (std::size_t i = 0; i < kRowsPerBlock * kBlocks; ++i) {
    const double row[] = {static_cast<double>(i) * 2.0,
                          static_cast<double>(i) * 3.0};
    writer.add(static_cast<double>(i), row,
               static_cast<std::uint32_t>(i % 4), 0.25, 1.0);
  }
  Counts counts;
  counts.records_seen = kRowsPerBlock * kBlocks;
  counts.decisions_seen = kRowsPerBlock * kBlocks;
  writer.set_counts(counts);
  writer.finish();
  return out.str();
}

TEST(StoreFaultTest, CorruptedBlockIsQuarantinedRestOfShardReads) {
  std::string bytes = demo_corpus();
  // Deterministically corrupt exactly one block: sweep seeds until a
  // single-block report (fraction is per-block probability, not a count).
  std::uint64_t seed = 1;
  CorruptionReport report;
  for (;; ++seed) {
    std::string copy = bytes;
    report = corrupt_blocks(copy, seed, 0.08);
    if (report.blocks_corrupted == 1) {
      bytes = std::move(copy);
      break;
    }
    ASSERT_LT(seed, 100u) << "no seed produced exactly one corrupt block";
  }
  EXPECT_EQ(report.blocks_total, kBlocks);
  EXPECT_EQ(report.rows_affected, kRowsPerBlock);

  const Reader reader = Reader::from_memory(bytes);  // open still succeeds
  const ScanResult scan = reader.scan();
  ASSERT_EQ(scan.quarantined.size(), 1u);
  const QuarantinedBlock& q = scan.quarantined.front();
  EXPECT_EQ(q.rows, kRowsPerBlock);
  EXPECT_TRUE(q.reason.rfind("crc_mismatch:", 0) == 0) << q.reason;
  EXPECT_EQ(scan.blocks_read, kBlocks - 1);
  EXPECT_EQ(scan.rows(), kRowsPerBlock * (kBlocks - 1));

  // Every surviving row is intact and in writer order; exactly the
  // quarantined block's index range is missing.
  std::set<std::uint64_t> expect_rows;
  for (std::uint64_t i = 0; i < kRowsPerBlock * kBlocks; ++i) {
    if (i / kRowsPerBlock != q.block) expect_rows.insert(i);
  }
  auto it = expect_rows.begin();
  for (std::size_t i = 0; i < scan.rows(); ++i, ++it) {
    const auto row = static_cast<std::uint64_t>(scan.time[i]);
    ASSERT_EQ(row, *it) << "scan row " << i;
    EXPECT_EQ(scan.context[i * 2], static_cast<double>(row) * 2.0);
    EXPECT_EQ(scan.context[i * 2 + 1], static_cast<double>(row) * 3.0);
    EXPECT_EQ(scan.action[i], static_cast<std::uint32_t>(row % 4));
  }
}

TEST(StoreFaultTest, ScavengeLedgersCorruptBlocksWithTheRightClass) {
  std::string bytes = demo_corpus();
  std::uint64_t seed = 1;
  for (;; ++seed) {
    std::string copy = bytes;
    if (corrupt_blocks(copy, seed, 0.08).blocks_corrupted == 1) {
      bytes = std::move(copy);
      break;
    }
    ASSERT_LT(seed, 100u);
  }
  const Reader reader = Reader::from_memory(bytes);

  logs::ScavengeSpec spec;
  spec.decision_event = "decide";
  spec.context_fields = {"x", "y"};
  spec.action_field = "a";
  spec.reward_field = "r";
  spec.num_actions = 4;
  spec.reward_transform = [](double r) { return r; };
  std::vector<logs::QuarantineClass> classes;
  std::vector<logs::Record> records;
  spec.on_quarantine = [&](logs::QuarantineClass cls,
                           const logs::Record& rec) {
    classes.push_back(cls);
    records.push_back(rec);
  };

  const logs::ScavengeResult result = logs::scavenge(reader, spec);
  EXPECT_EQ(result.dropped_corrupt_block, kRowsPerBlock);
  EXPECT_EQ(result.total_dropped(), kRowsPerBlock);
  EXPECT_EQ(result.data.size(), kRowsPerBlock * (kBlocks - 1));
  // Conservation: every decision the compactor saw is either harvested or
  // in a quarantine class.
  EXPECT_EQ(result.decisions_seen,
            result.data.size() + result.total_dropped());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes.front(), logs::QuarantineClass::kCorruptBlock);
  EXPECT_EQ(records.front().event, "hlog.corrupt_block");
  EXPECT_TRUE(records.front().integer("block").has_value());
}

TEST(StoreFaultTest, CorruptionIsDeterministic) {
  const std::string pristine = demo_corpus();
  std::string a = pristine;
  std::string b = pristine;
  const CorruptionReport ra = corrupt_blocks(a, 7, 0.5);
  const CorruptionReport rb = corrupt_blocks(b, 7, 0.5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.blocks_corrupted, rb.blocks_corrupted);
  EXPECT_GT(ra.blocks_corrupted, 0u);
  // A different seed damages a different set of blocks (overwhelmingly).
  std::string c = pristine;
  corrupt_blocks(c, 8, 0.5);
  EXPECT_NE(a, c);
}

TEST(StoreFaultTest, TrustedSectionCorruptionIsFatalAtOpen) {
  const std::string pristine = demo_corpus();

  // Header magic.
  std::string bad = pristine;
  bad[0] = 'X';
  EXPECT_THROW(Reader::from_memory(bad), std::runtime_error);

  // Unsupported version.
  bad = pristine;
  bad[4] = 9;
  EXPECT_THROW(Reader::from_memory(bad), std::runtime_error);

  // Schema payload byte (CRC-guarded).
  bad = pristine;
  bad[kHeaderBytes + 8] = static_cast<char>(bad[kHeaderBytes + 8] ^ 0xFF);
  EXPECT_THROW(Reader::from_memory(bad), std::runtime_error);

  // Footer byte (CRC-guarded; kill a shard index offset).
  bad = pristine;
  const std::size_t footer_len = [&] {
    const char* t = bad.data() + bad.size() - kTrailerBytes;
    return static_cast<std::size_t>(static_cast<unsigned char>(t[0]) |
                                    (static_cast<unsigned char>(t[1]) << 8) |
                                    (static_cast<unsigned char>(t[2]) << 16) |
                                    (static_cast<unsigned char>(t[3]) << 24));
  }();
  const std::size_t footer_at = bad.size() - kTrailerBytes - footer_len;
  bad[footer_at + 4] = static_cast<char>(bad[footer_at + 4] ^ 0xFF);
  EXPECT_THROW(Reader::from_memory(bad), std::runtime_error);

  // Truncated trailer.
  bad = pristine.substr(0, pristine.size() - 1);
  EXPECT_THROW(Reader::from_memory(bad), std::runtime_error);

  // Not HLOG at all.
  EXPECT_THROW(Reader::from_memory("t=0 ev=decide x=1\n"),
               std::runtime_error);
}

TEST(StoreFaultTest, ChaosSweepConservesEveryRow) {
  // At every corruption intensity, harvested + quarantined must equal the
  // corpus (no silent loss, no double counting), and quarantined blocks
  // must match what the corruptor reports.
  const std::string pristine = demo_corpus();
  for (const double fraction : {0.1, 0.3, 0.6, 1.0}) {
    std::string bytes = pristine;
    const CorruptionReport report = corrupt_blocks(bytes, 42, fraction);
    const Reader reader = Reader::from_memory(bytes);
    const ScanResult scan = reader.scan();
    EXPECT_EQ(scan.quarantined.size(), report.blocks_corrupted)
        << "fraction " << fraction;
    EXPECT_EQ(scan.rows_quarantined(), report.rows_affected);
    EXPECT_EQ(scan.rows() + scan.rows_quarantined(),
              kRowsPerBlock * kBlocks);
  }
}

}  // namespace
}  // namespace harvest::store
