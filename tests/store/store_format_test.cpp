#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "store/crc32c.h"
#include "store/dataset.h"
#include "store/encoding.h"
#include "store/format.h"
#include "util/rng.h"

namespace harvest::store {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / Castagnoli check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  // 32 zero bytes — the iSCSI test vector.
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split : {std::size_t{1}, std::size_t{7}, data.size() - 1}) {
    const std::uint32_t first = crc32c(data.substr(0, split));
    EXPECT_EQ(crc32c(data.substr(split), first), whole) << "split " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(64, 'x');
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte : {std::size_t{0}, std::size_t{31}, data.size() - 1}) {
    std::string bad = data;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x01);
    EXPECT_NE(crc32c(bad), clean);
  }
}

TEST(Crc32cTest, SoftwareFallbackMatchesKnownVectors) {
  // The slice-by-4 table path must hold the same vectors on its own — it is
  // the cross-check oracle for the hardware path below.
  EXPECT_EQ(crc32c_software("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c_software(""), 0u);
  EXPECT_EQ(crc32c_software(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, DispatchedAndSoftwarePathsAgree) {
  // crc32c() dispatches to SSE4.2/ARMv8 CRC instructions when the CPU has
  // them; whatever backend ran, it must agree with the table fallback on
  // every length class (word loop, 8-byte chunks, byte tails) and seed.
  EXPECT_FALSE(crc32c_backend().empty());
  util::Rng rng(20260808);
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{15},
        std::size_t{16}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{255}, std::size_t{1024}, std::size_t{4097}}) {
    std::string buf(len, '\0');
    for (char& c : buf) {
      c = static_cast<char>(rng.uniform_index(256));
    }
    const auto seed = static_cast<std::uint32_t>(rng.uniform_index(1u << 31));
    EXPECT_EQ(crc32c(buf, seed), crc32c_software(buf, seed)) << "len " << len;
    if (len > 3) {
      // Misaligned start: the hardware path's unaligned loads must not
      // change the answer.
      const std::string_view tail(buf.data() + 3, len - 3);
      EXPECT_EQ(crc32c(tail, seed), crc32c_software(tail, seed))
          << "len " << len;
    }
  }
}

TEST(EncodingTest, FixedWidthRoundTrip) {
  std::string buf;
  put_u16(buf, 0xBEEF);
  put_u32(buf, 0xDEADBEEFu);
  put_u64(buf, 0x0123456789ABCDEFull);
  put_f64(buf, -0.0);
  ASSERT_EQ(buf.size(), 2u + 4u + 8u + 8u);
  EXPECT_EQ(get_u16(buf.data()), 0xBEEF);
  EXPECT_EQ(get_u32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(get_u64(buf.data() + 6), 0x0123456789ABCDEFull);
  EXPECT_EQ(std::signbit(get_f64(buf.data() + 14)), true);
  // The wire layout is little-endian regardless of host order.
  EXPECT_EQ(buf[0], '\xEF');
  EXPECT_EQ(buf[1], '\xBE');
}

TEST(EncodingTest, VarintRoundTripAndEdges) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 300,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::string buf;
    put_varint(buf, v);
    EXPECT_LE(buf.size(), 10u);
    std::size_t pos = 0;
    std::uint64_t back = 0;
    ASSERT_TRUE(get_varint(buf, &pos, &back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(EncodingTest, VarintRejectsTruncation) {
  std::string buf;
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  buf.pop_back();  // drop the terminating byte
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(get_varint(buf, &pos, &out));
}

TEST(EncodingTest, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0, -1, 1, -2, 2,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  // Small magnitudes map to small codes (the property the action column
  // relies on for one-byte deltas).
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(EncodingTest, F64ColumnRoundTripsEveryBitPattern) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      1e-300,
      -1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      4.9406564584124654e-324};
  std::string buf;
  encode_f64_column(values, buf);
  std::vector<double> back;
  ASSERT_TRUE(decode_f64_column(buf, values.size(), back));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "index " << i;
  }
}

TEST(EncodingTest, ConstantF64ColumnIsOneBytePerRowAfterFirst) {
  const std::vector<double> values(1000, 1.0);
  std::string buf;
  encode_f64_column(values, buf);
  // First row carries bits(1.0); every later XOR-delta is 0 → one byte.
  EXPECT_LE(buf.size(), 999u + 10u);
}

TEST(EncodingTest, F64ColumnRejectsTruncationAndTrailingGarbage) {
  const std::vector<double> values = {3.14, 2.71, 1.41};
  std::string buf;
  encode_f64_column(values, buf);
  std::vector<double> out;
  std::string truncated = buf.substr(0, buf.size() - 1);
  EXPECT_FALSE(decode_f64_column(truncated, values.size(), out));
  out.clear();
  std::string padded = buf + '\0';
  EXPECT_FALSE(decode_f64_column(padded, values.size(), out));
}

TEST(EncodingTest, U32ColumnRoundTripAndBoundsCheck) {
  const std::vector<std::uint32_t> values = {0, 5, 2, 2, 0xFFFFFFFFu, 0, 7};
  std::string buf;
  encode_u32_column(values, buf);
  std::vector<std::uint32_t> back(values.size());
  ASSERT_TRUE(decode_u32_column_into(buf, values.size(), back.data()));
  EXPECT_EQ(back, values);

  // A delta that drives the running value negative must be rejected.
  std::string bad;
  put_varint(bad, zigzag(-1));
  std::uint32_t one = 0;
  EXPECT_FALSE(decode_u32_column_into(bad, 1, &one));
}

TEST(FormatTest, MagicDetection) {
  std::string hlog;
  put_u32(hlog, kFileMagic);
  hlog += "rest";
  EXPECT_TRUE(is_hlog(hlog));
  EXPECT_FALSE(is_hlog("t=0 ev=decide x=1\n"));
  EXPECT_FALSE(is_hlog(""));
  EXPECT_FALSE(is_hlog("HLO"));
}

TEST(FormatTest, SchemaEquality) {
  Schema a;
  a.decision_event = "decide";
  a.context_fields = {"x", "y"};
  a.action_field = "a";
  a.reward_field = "r";
  a.num_actions = 3;
  Schema b = a;
  EXPECT_EQ(a, b);
  b.reward_hi = 2.0;
  EXPECT_NE(a, b);
}

ZoneMap zone(double tmin, double tmax, std::uint32_t amin, std::uint32_t amax,
             double pmin, double pmax) {
  ZoneMap z;
  z.min_time = tmin;
  z.max_time = tmax;
  z.min_action = amin;
  z.max_action = amax;
  z.min_propensity = pmin;
  z.max_propensity = pmax;
  return z;
}

TEST(FormatTest, TrivialPredicateAdmitsAndMatchesEverything) {
  const ScanPredicate all;
  EXPECT_TRUE(all.trivial());
  EXPECT_EQ(all.describe(), "all");
  EXPECT_TRUE(all.admits(zone(10, 20, 2, 5, 0.1, 0.5)));
  EXPECT_TRUE(all.matches(1e300, 7, -3.0));
  EXPECT_TRUE(all.matches(std::numeric_limits<double>::quiet_NaN(), 0,
                          std::numeric_limits<double>::quiet_NaN()));
}

TEST(FormatTest, PredicatePrunesByEveryZoneDimension) {
  const ZoneMap z = zone(10, 20, 2, 5, 0.1, 0.5);

  ScanPredicate time_after;
  time_after.min_time = 25;
  EXPECT_FALSE(time_after.trivial());
  EXPECT_FALSE(time_after.admits(z));
  time_after.min_time = 20;  // zone max is inclusive
  EXPECT_TRUE(time_after.admits(z));

  ScanPredicate time_before;
  time_before.max_time = 5;
  EXPECT_FALSE(time_before.admits(z));

  ScanPredicate wrong_action;
  wrong_action.action = 7;
  EXPECT_FALSE(wrong_action.admits(z));
  wrong_action.action = 3;
  EXPECT_TRUE(wrong_action.admits(z));

  ScanPredicate p_band;
  p_band.min_propensity = 0.6;
  EXPECT_FALSE(p_band.admits(z));
  p_band.min_propensity = 0.3;
  EXPECT_TRUE(p_band.admits(z));
}

TEST(FormatTest, NanWidenedZoneIsNeverPruned) {
  // Writer widens a block's zone to ±inf when it saw a NaN value; no
  // predicate may prune such a block, else pruned != filtered.
  const double inf = std::numeric_limits<double>::infinity();
  const ZoneMap widened = zone(-inf, inf, 0, 0, -inf, inf);
  ScanPredicate narrow;
  narrow.min_time = 1e9;
  narrow.max_time = 1e9 + 1;
  narrow.min_propensity = 0.999;
  EXPECT_TRUE(narrow.admits(widened));
}

TEST(FormatTest, NanRowPassesRangeFiltersButNotActionEquality) {
  // Row filters are negated comparisons: NaN fails every ordered compare,
  // so a NaN time/propensity row survives range predicates (matching what a
  // post-hoc filter built the same way would keep).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ScanPredicate range;
  range.min_time = 100;
  range.max_propensity = 0.5;
  EXPECT_TRUE(range.matches(nan, 0, nan));
  EXPECT_FALSE(range.matches(50, 0, 0.25));

  ScanPredicate only2;
  only2.action = 2;
  EXPECT_TRUE(only2.matches(nan, 2, nan));
  EXPECT_FALSE(only2.matches(nan, 3, nan));
}

TEST(FormatTest, ManifestJsonRoundTrips) {
  Manifest manifest;
  manifest.version = kManifestVersion;
  manifest.counts.records_seen = 100;
  manifest.counts.decisions_seen = 90;
  manifest.counts.dropped_missing_fields = 3;
  manifest.counts.dropped_bad_action = 2;
  manifest.counts.dropped_bad_propensity = 1;
  manifest.counts.dropped_stale_timestamp = 4;
  manifest.counts.dropped_corrupt_block = 5;
  manifest.counts.rows = 75;
  Counts part;
  part.records_seen = 40;
  part.decisions_seen = 40;
  part.rows = 40;
  manifest.shards.push_back({"part-00000.hlog", part});
  part.rows = 35;
  part.records_seen = 35;
  part.decisions_seen = 35;
  manifest.shards.push_back({"part-00001.hlog", part});

  const Manifest back = Manifest::parse_json(manifest.to_json(), "test");
  EXPECT_EQ(back.version, manifest.version);
  EXPECT_EQ(back.counts, manifest.counts);
  ASSERT_EQ(back.shards.size(), manifest.shards.size());
  for (std::size_t i = 0; i < back.shards.size(); ++i) {
    EXPECT_EQ(back.shards[i].file, manifest.shards[i].file);
    EXPECT_EQ(back.shards[i].counts, manifest.shards[i].counts);
  }
}

TEST(FormatTest, ManifestRejectsMalformedJson) {
  EXPECT_THROW(Manifest::parse_json("not json at all", "t"),
               std::runtime_error);
  EXPECT_THROW(Manifest::parse_json("{\"hlog_dataset\": 1}", "t"),
               std::runtime_error);
  EXPECT_THROW(
      Manifest::parse_json(
          "{\"hlog_dataset\": 99, \"counts\": {}, \"shards\": []}", "t"),
      std::runtime_error);
}

}  // namespace
}  // namespace harvest::store
