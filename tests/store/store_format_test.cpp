#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "store/crc32c.h"
#include "store/encoding.h"
#include "store/format.h"

namespace harvest::store {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / Castagnoli check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  // 32 zero bytes — the iSCSI test vector.
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split : {std::size_t{1}, std::size_t{7}, data.size() - 1}) {
    const std::uint32_t first = crc32c(data.substr(0, split));
    EXPECT_EQ(crc32c(data.substr(split), first), whole) << "split " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(64, 'x');
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte : {std::size_t{0}, std::size_t{31}, data.size() - 1}) {
    std::string bad = data;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x01);
    EXPECT_NE(crc32c(bad), clean);
  }
}

TEST(EncodingTest, FixedWidthRoundTrip) {
  std::string buf;
  put_u16(buf, 0xBEEF);
  put_u32(buf, 0xDEADBEEFu);
  put_u64(buf, 0x0123456789ABCDEFull);
  put_f64(buf, -0.0);
  ASSERT_EQ(buf.size(), 2u + 4u + 8u + 8u);
  EXPECT_EQ(get_u16(buf.data()), 0xBEEF);
  EXPECT_EQ(get_u32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(get_u64(buf.data() + 6), 0x0123456789ABCDEFull);
  EXPECT_EQ(std::signbit(get_f64(buf.data() + 14)), true);
  // The wire layout is little-endian regardless of host order.
  EXPECT_EQ(buf[0], '\xEF');
  EXPECT_EQ(buf[1], '\xBE');
}

TEST(EncodingTest, VarintRoundTripAndEdges) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 300,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::string buf;
    put_varint(buf, v);
    EXPECT_LE(buf.size(), 10u);
    std::size_t pos = 0;
    std::uint64_t back = 0;
    ASSERT_TRUE(get_varint(buf, &pos, &back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(EncodingTest, VarintRejectsTruncation) {
  std::string buf;
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  buf.pop_back();  // drop the terminating byte
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(get_varint(buf, &pos, &out));
}

TEST(EncodingTest, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0, -1, 1, -2, 2,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : cases) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  // Small magnitudes map to small codes (the property the action column
  // relies on for one-byte deltas).
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(EncodingTest, F64ColumnRoundTripsEveryBitPattern) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      1e-300,
      -1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      4.9406564584124654e-324};
  std::string buf;
  encode_f64_column(values, buf);
  std::vector<double> back;
  ASSERT_TRUE(decode_f64_column(buf, values.size(), back));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "index " << i;
  }
}

TEST(EncodingTest, ConstantF64ColumnIsOneBytePerRowAfterFirst) {
  const std::vector<double> values(1000, 1.0);
  std::string buf;
  encode_f64_column(values, buf);
  // First row carries bits(1.0); every later XOR-delta is 0 → one byte.
  EXPECT_LE(buf.size(), 999u + 10u);
}

TEST(EncodingTest, F64ColumnRejectsTruncationAndTrailingGarbage) {
  const std::vector<double> values = {3.14, 2.71, 1.41};
  std::string buf;
  encode_f64_column(values, buf);
  std::vector<double> out;
  std::string truncated = buf.substr(0, buf.size() - 1);
  EXPECT_FALSE(decode_f64_column(truncated, values.size(), out));
  out.clear();
  std::string padded = buf + '\0';
  EXPECT_FALSE(decode_f64_column(padded, values.size(), out));
}

TEST(EncodingTest, U32ColumnRoundTripAndBoundsCheck) {
  const std::vector<std::uint32_t> values = {0, 5, 2, 2, 0xFFFFFFFFu, 0, 7};
  std::string buf;
  encode_u32_column(values, buf);
  std::vector<std::uint32_t> back(values.size());
  ASSERT_TRUE(decode_u32_column_into(buf, values.size(), back.data()));
  EXPECT_EQ(back, values);

  // A delta that drives the running value negative must be rejected.
  std::string bad;
  put_varint(bad, zigzag(-1));
  std::uint32_t one = 0;
  EXPECT_FALSE(decode_u32_column_into(bad, 1, &one));
}

TEST(FormatTest, MagicDetection) {
  std::string hlog;
  put_u32(hlog, kFileMagic);
  hlog += "rest";
  EXPECT_TRUE(is_hlog(hlog));
  EXPECT_FALSE(is_hlog("t=0 ev=decide x=1\n"));
  EXPECT_FALSE(is_hlog(""));
  EXPECT_FALSE(is_hlog("HLO"));
}

TEST(FormatTest, SchemaEquality) {
  Schema a;
  a.decision_event = "decide";
  a.context_fields = {"x", "y"};
  a.action_field = "a";
  a.reward_field = "r";
  a.num_actions = 3;
  Schema b = a;
  EXPECT_EQ(a, b);
  b.reward_hi = 2.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace harvest::store
