// Property tests for zone-map predicate pushdown and the parallel merging
// compactor, over fault-injected corpora:
//   - a pruned scan must equal full-scan-then-filter bit-exactly, for
//     random predicates, at 1 and 8 threads, even when blocks are
//     CRC-corrupted (pruning may skip a corrupt block before reading it,
//     but the surviving rows must be the same either way);
//   - merging many damaged shards is byte-deterministic at any thread
//     count and conserves the quarantine ledger exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "par/thread_pool.h"
#include "store/store.h"
#include "util/rng.h"

namespace harvest::store {
namespace {

struct Row {
  double time;
  std::vector<double> context;
  std::uint32_t action;
  double reward;
  double propensity;
};

Schema test_schema(std::size_t dim) {
  Schema schema;
  schema.decision_event = "decide";
  for (std::size_t i = 0; i < dim; ++i) {
    schema.context_fields.push_back("f" + std::to_string(i));
  }
  schema.action_field = "a";
  schema.reward_field = "r";
  schema.propensity_field = "p";
  schema.num_actions = 8;
  schema.reward_lo = -2.0;
  schema.reward_hi = 2.0;
  return schema;
}

/// Rows with non-monotone times, a low-cardinality dict-coded field, and a
/// sprinkle of NaN times/propensities — the values that stress the
/// zone-widening convention.
std::vector<Row> random_rows(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Row> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Row row;
    row.time = (i % 37 == 0) ? nan
                             : static_cast<double>(i) + rng.uniform(-3.0, 3.0);
    row.context = {static_cast<double>(rng.uniform_index(5)),
                   rng.normal(0.0, 10.0)};
    row.action = static_cast<std::uint32_t>(rng.uniform_index(8));
    row.reward = rng.uniform(-2.0, 2.0);
    row.propensity = (i % 41 == 0) ? nan : rng.uniform(0.01, 1.0);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string write_rows(const std::vector<Row>& rows, const Schema& schema,
                       const WriterOptions& options) {
  std::ostringstream out;
  Writer writer(out, schema, options);
  for (const auto& row : rows) {
    writer.add(row.time, row.context, row.action, row.reward, row.propensity);
  }
  Counts counts;
  counts.records_seen = rows.size();
  counts.decisions_seen = rows.size();
  writer.set_counts(counts);
  writer.finish();
  return out.str();
}

ScanPredicate random_predicate(util::Rng& rng, std::size_t n) {
  ScanPredicate predicate;
  if (rng.uniform_index(2) == 0) {
    predicate.min_time = rng.uniform(0.0, static_cast<double>(n));
  }
  if (rng.uniform_index(2) == 0) {
    const double lo = std::isinf(predicate.min_time) ? 0.0 : predicate.min_time;
    predicate.max_time = rng.uniform(lo, static_cast<double>(n));
  }
  if (rng.uniform_index(3) == 0) {
    predicate.action = static_cast<std::uint32_t>(rng.uniform_index(8));
  }
  if (rng.uniform_index(3) == 0) {
    predicate.min_propensity = rng.uniform(0.0, 1.0);
  }
  return predicate;
}

/// Full-scan-then-filter: the oracle the pruned scan must reproduce.
ScanResult filter_scan(const ScanResult& full, const ScanPredicate& pred) {
  ScanResult out;
  out.context_dim = full.context_dim;
  for (std::size_t i = 0; i < full.rows(); ++i) {
    if (!pred.matches(full.time[i], full.action[i], full.propensity[i])) {
      continue;
    }
    out.time.push_back(full.time[i]);
    out.action.push_back(full.action[i]);
    out.reward.push_back(full.reward[i]);
    out.propensity.push_back(full.propensity[i]);
    out.context.insert(out.context.end(),
                       full.context.begin() +
                           static_cast<std::ptrdiff_t>(i * full.context_dim),
                       full.context.begin() + static_cast<std::ptrdiff_t>(
                                                  (i + 1) * full.context_dim));
  }
  return out;
}

void expect_same_columns(const ScanResult& got, const ScanResult& want,
                         const std::string& label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  const auto bits_equal = [&](const std::vector<double>& a,
                              const std::vector<double>& b,
                              const char* column) {
    ASSERT_EQ(a.size(), b.size()) << label << " " << column;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]))
          << label << " " << column << " row " << i;
    }
  };
  bits_equal(got.time, want.time, "time");
  bits_equal(got.context, want.context, "context");
  bits_equal(got.reward, want.reward, "reward");
  bits_equal(got.propensity, want.propensity, "propensity");
  EXPECT_EQ(got.action, want.action) << label;
}

TEST(StorePruningPropertyTest, PrunedScanEqualsFilteredScanOnDamagedCorpora) {
  const Schema schema = test_schema(2);
  par::ThreadPool pool(8);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::size_t n = 900 + seed * 101;
    const auto rows = random_rows(n, seed);
    std::string bytes = write_rows(
        rows, schema, {.rows_per_block = 48, .blocks_per_shard = 3});
    // Damage ~20% of the blocks (framing and footer survive, so zone maps
    // stay trusted and the rest of each shard is readable).
    const CorruptionReport damage = corrupt_blocks(bytes, seed, 0.2);
    ASSERT_GT(damage.blocks_corrupted, 0u);

    const Reader reader = Reader::from_memory(bytes);
    const ScanResult full = reader.scan(nullptr);
    EXPECT_EQ(full.rows() + full.rows_quarantined(), rows.size());
    EXPECT_EQ(full.quarantined.size(), damage.blocks_corrupted);

    util::Rng rng(seed * 7919);
    for (int trial = 0; trial < 8; ++trial) {
      const ScanPredicate predicate = random_predicate(rng, n);
      const ScanResult expected = filter_scan(full, predicate);
      const ScanResult sequential = reader.scan(predicate, nullptr);
      const ScanResult parallel = reader.scan(predicate, &pool);
      expect_same_columns(sequential, expected,
                          "seq [" + predicate.describe() + "]");
      expect_same_columns(parallel, expected,
                          "par [" + predicate.describe() + "]");
      // Thread count must not change what was pruned or quarantined.
      EXPECT_EQ(parallel.blocks_pruned, sequential.blocks_pruned);
      EXPECT_EQ(parallel.rows_pruned, sequential.rows_pruned);
      ASSERT_EQ(parallel.quarantined.size(), sequential.quarantined.size());
      for (std::size_t q = 0; q < parallel.quarantined.size(); ++q) {
        EXPECT_EQ(parallel.quarantined[q].block,
                  sequential.quarantined[q].block);
      }
      // A pruned scan may skip damaged blocks before reading them, so its
      // quarantine list is a subset of the full scan's — never larger.
      EXPECT_LE(sequential.quarantined.size(), full.quarantined.size());
    }
  }
}

TEST(StorePruningPropertyTest, ZoneMapsActuallyPrune) {
  // Monotone time + a narrow window ⇒ most blocks must be skipped, and the
  // skipped rows accounted.
  std::vector<Row> rows;
  for (std::size_t i = 0; i < 1000; ++i) {
    rows.push_back(Row{static_cast<double>(i),
                       {0.0, 1.0},
                       static_cast<std::uint32_t>(i % 8),
                       0.5,
                       0.5});
  }
  const std::string bytes = write_rows(
      rows, test_schema(2), {.rows_per_block = 50, .blocks_per_shard = 4});
  const Reader reader = Reader::from_memory(bytes);
  ScanPredicate last_tenth;
  last_tenth.min_time = 900.0;
  const ScanResult scan = reader.scan(last_tenth);
  EXPECT_EQ(scan.rows(), 100u);
  EXPECT_EQ(scan.blocks_pruned, 18u);  // 20 blocks, 2 admit time >= 900
  EXPECT_EQ(scan.rows_pruned, 900u);
}

TEST(StorePruningPropertyTest, MergeIsDeterministicAndConservesLedger) {
  const Schema schema = test_schema(2);
  par::ThreadPool pool(8);
  for (const std::uint64_t seed : {5ull, 6ull}) {
    // Several small shard files, some damaged, one carrying a pre-existing
    // corrupt-block ledger from an earlier merge generation.
    std::vector<std::string> images;
    std::uint64_t total_rows = 0;
    for (std::size_t part = 0; part < 5; ++part) {
      const auto rows = random_rows(200 + part * 37, seed * 10 + part);
      total_rows += rows.size();
      std::string bytes = write_rows(
          rows, schema, {.rows_per_block = 32, .blocks_per_shard = 2});
      if (part % 2 == 1) {
        corrupt_blocks(bytes, seed + part, 0.25);
      }
      images.push_back(std::move(bytes));
    }

    std::vector<std::unique_ptr<Reader>> readers;
    std::vector<const Reader*> inputs;
    for (auto& image : images) {
      readers.push_back(
          std::make_unique<Reader>(Reader::from_memory(image)));
      inputs.push_back(readers.back().get());
    }

    const WriterOptions options{.rows_per_block = 64, .blocks_per_shard = 3};
    std::ostringstream seq_out(std::ios::binary);
    const MergeReport seq_report =
        merge_readers(inputs, seq_out, options, nullptr);
    std::ostringstream par_out(std::ios::binary);
    const MergeReport par_report =
        merge_readers(inputs, par_out, options, &pool);

    EXPECT_EQ(seq_out.str(), par_out.str())
        << "merge bytes differ between 1 and 8 threads";
    EXPECT_TRUE(seq_report.conserved());
    EXPECT_TRUE(par_report.conserved());
    EXPECT_EQ(seq_report.rows_kept + seq_report.rows_quarantined, total_rows);

    // The merged file re-opens, carries the summed ledger, and scans to
    // exactly the concatenation of the inputs' surviving rows.
    const Reader merged = Reader::from_memory(seq_out.str());
    EXPECT_EQ(merged.rows(), seq_report.rows_kept);
    EXPECT_EQ(merged.counts().dropped_corrupt_block,
              seq_report.rows_quarantined);
    ScanResult expected;
    expected.context_dim = 2;
    for (const Reader* reader : inputs) {
      const ScanResult scan = reader->scan(nullptr);
      expected.time.insert(expected.time.end(), scan.time.begin(),
                           scan.time.end());
      expected.context.insert(expected.context.end(), scan.context.begin(),
                              scan.context.end());
      expected.action.insert(expected.action.end(), scan.action.begin(),
                             scan.action.end());
      expected.reward.insert(expected.reward.end(), scan.reward.begin(),
                             scan.reward.end());
      expected.propensity.insert(expected.propensity.end(),
                                 scan.propensity.begin(),
                                 scan.propensity.end());
    }
    const ScanResult merged_scan = merged.scan(nullptr);
    EXPECT_TRUE(merged_scan.quarantined.empty());
    expect_same_columns(merged_scan, expected, "merged");
  }
}

/// Double merge: merging the merged file again keeps the ledger intact —
/// dropped_corrupt_block survives generations (the conservation invariant
/// composes).
TEST(StorePruningPropertyTest, LedgerSurvivesRepeatedMerging) {
  const Schema schema = test_schema(2);
  const auto rows = random_rows(500, 17);
  std::string bytes =
      write_rows(rows, schema, {.rows_per_block = 25, .blocks_per_shard = 2});
  corrupt_blocks(bytes, 99, 0.3);

  const Reader gen0 = Reader::from_memory(bytes);
  std::ostringstream out1(std::ios::binary);
  const MergeReport first = merge_readers({&gen0}, out1, {}, nullptr);
  ASSERT_TRUE(first.conserved());
  ASSERT_GT(first.rows_quarantined, 0u);

  const Reader gen1 = Reader::from_memory(out1.str());
  std::ostringstream out2(std::ios::binary);
  const MergeReport second = merge_readers({&gen1}, out2, {}, nullptr);
  EXPECT_TRUE(second.conserved());
  EXPECT_EQ(second.rows_quarantined, 0u) << "gen1 has no damaged blocks";
  const Reader gen2 = Reader::from_memory(out2.str());
  EXPECT_EQ(gen2.counts().dropped_corrupt_block, first.rows_quarantined);
  EXPECT_EQ(gen2.rows(), first.rows_kept);
}

}  // namespace
}  // namespace harvest::store
