// Property tests for the HLOG store: random corpora must round-trip
// bit-exactly through Writer → Reader, the writer must be deterministic,
// scans must be thread-count-invariant, and scavenging an HLOG corpus must
// be bit-identical to scavenging the text it was compacted from.
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "logs/log_store.h"
#include "logs/scavenger.h"
#include "par/thread_pool.h"
#include "store/store.h"
#include "util/rng.h"

namespace harvest::store {
namespace {

struct Row {
  double time;
  std::vector<double> context;
  std::uint32_t action;
  double reward;
  double propensity;
};

Schema test_schema(std::size_t dim) {
  Schema schema;
  schema.decision_event = "decide";
  for (std::size_t i = 0; i < dim; ++i) {
    schema.context_fields.push_back("f" + std::to_string(i));
  }
  schema.action_field = "a";
  schema.reward_field = "r";
  schema.propensity_field = "p";
  schema.num_actions = 16;
  schema.reward_lo = -2.0;
  schema.reward_hi = 2.0;
  return schema;
}

/// Random rows with adversarial values: denormal-propensity exploration
/// data, negative-zero rewards, far-future timestamps.
std::vector<Row> random_rows(std::size_t n, std::size_t dim,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Row row;
    row.time = static_cast<double>(i) * 1e6 + rng.uniform(0.0, 1.0);
    for (std::size_t f = 0; f < dim; ++f) {
      row.context.push_back(rng.normal(0.0, 100.0));
    }
    row.action = static_cast<std::uint32_t>(rng.uniform_index(16));
    row.reward = (i % 7 == 0) ? -0.0 : rng.uniform(-2.0, 2.0);
    switch (i % 5) {
      case 0:
        row.propensity = 1e-12;  // extreme importance weight, still legal
        break;
      case 1:
        row.propensity = 1.0;
        break;
      default:
        row.propensity = rng.uniform(1e-6, 1.0);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string write_rows(const std::vector<Row>& rows, const Schema& schema,
                       WriterOptions options) {
  std::ostringstream out;
  Writer writer(out, schema, options);
  for (const auto& row : rows) {
    writer.add(row.time, row.context, row.action, row.reward, row.propensity);
  }
  Counts counts;
  counts.records_seen = rows.size();
  counts.decisions_seen = rows.size();
  writer.set_counts(counts);
  writer.finish();
  return out.str();
}

void expect_bits_equal(const std::vector<double>& got,
                       const std::vector<double>& want, const char* column) {
  ASSERT_EQ(got.size(), want.size()) << column;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << column << " row " << i;
  }
}

TEST(StoreRoundTripTest, RandomCorporaRoundTripBitExactly) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const std::size_t dim = 1 + seed % 4;
    const auto rows = random_rows(997, dim, seed);  // prime: ragged last block
    const std::string bytes =
        write_rows(rows, test_schema(dim), {.rows_per_block = 64,
                                            .blocks_per_shard = 3});
    const Reader reader = Reader::from_memory(bytes);
    EXPECT_EQ(reader.rows(), rows.size());
    const ScanResult scan = reader.scan();
    ASSERT_EQ(scan.rows(), rows.size());
    EXPECT_TRUE(scan.quarantined.empty());
    EXPECT_EQ(scan.context_dim, dim);

    std::vector<double> time, reward, propensity, context;
    std::vector<std::uint32_t> action;
    for (const auto& row : rows) {
      time.push_back(row.time);
      reward.push_back(row.reward);
      propensity.push_back(row.propensity);
      action.push_back(row.action);
      context.insert(context.end(), row.context.begin(), row.context.end());
    }
    expect_bits_equal(scan.time, time, "time");
    expect_bits_equal(scan.context, context, "context");
    expect_bits_equal(scan.reward, reward, "reward");
    expect_bits_equal(scan.propensity, propensity, "propensity");
    EXPECT_EQ(scan.action, action);
  }
}

TEST(StoreRoundTripTest, WriterIsDeterministic) {
  const auto rows = random_rows(500, 3, 77);
  const Schema schema = test_schema(3);
  const WriterOptions options{.rows_per_block = 128, .blocks_per_shard = 2};
  EXPECT_EQ(write_rows(rows, schema, options),
            write_rows(rows, schema, options));
}

TEST(StoreRoundTripTest, ScanIsThreadCountInvariant) {
  const auto rows = random_rows(2000, 2, 99);
  const std::string bytes =
      write_rows(rows, test_schema(2), {.rows_per_block = 100,
                                        .blocks_per_shard = 2});
  const Reader reader = Reader::from_memory(bytes);
  const ScanResult sequential = reader.scan(nullptr);
  par::ThreadPool pool(8);
  const ScanResult parallel = reader.scan(&pool);
  expect_bits_equal(parallel.time, sequential.time, "time");
  expect_bits_equal(parallel.context, sequential.context, "context");
  expect_bits_equal(parallel.reward, sequential.reward, "reward");
  expect_bits_equal(parallel.propensity, sequential.propensity, "propensity");
  EXPECT_EQ(parallel.action, sequential.action);
  EXPECT_EQ(parallel.blocks_read, sequential.blocks_read);
}

TEST(StoreRoundTripTest, SchemaRoundTripsThroughTheFile) {
  Schema schema = test_schema(2);
  schema.stale_after_seconds = 90.0;
  const std::string bytes =
      write_rows(random_rows(10, 2, 5), schema, {.rows_per_block = 4});
  const Reader reader = Reader::from_memory(bytes);
  EXPECT_EQ(reader.schema(), schema);
}

/// The acceptance bar of the subsystem: scavenging a compacted corpus is
/// bit-identical to scavenging the text log it came from — same tuples,
/// same order, same ledger — including under a non-trivial reward
/// transform applied at scan time.
TEST(StoreRoundTripTest, HlogScavengeMatchesTextScavengeBitExactly) {
  util::Rng rng(4242);
  logs::LogStore log;
  for (std::size_t i = 0; i < 3000; ++i) {
    logs::Record rec;
    rec.time = static_cast<double>(i);
    rec.event = (i % 9 == 0) ? "heartbeat" : "decide";
    rec.set("x", rng.normal(0.0, 1.0));
    rec.set("y", rng.uniform(-5.0, 5.0));
    // A sprinkle of quarantine fodder so the persisted ledger is non-trivial.
    if (i % 31 == 0) {
      rec.set("a", std::int64_t{999});  // bad action
    } else if (i % 47 == 0) {
      rec.set("a", "not-a-number");  // missing (unparsable) field
    } else {
      rec.set("a", static_cast<std::int64_t>(i % 4));
    }
    rec.set("r", rng.uniform(0.0, 1.0));
    rec.set("p", (i % 13 == 0) ? 1e-9 : 0.25);
    log.append(std::move(rec));
  }

  logs::ScavengeSpec spec;
  spec.decision_event = "decide";
  spec.context_fields = {"x", "y"};
  spec.action_field = "a";
  spec.reward_field = "r";
  spec.propensity_field = "p";
  spec.num_actions = 4;
  spec.reward_range = {0.0, 1.0};
  spec.reward_transform = [](double r) { return 1.0 - r; };

  // Compact: identity transform (HLOG stores raw values), tap the kept rows.
  std::ostringstream out;
  Schema schema;
  schema.decision_event = spec.decision_event;
  schema.context_fields = spec.context_fields;
  schema.action_field = spec.action_field;
  schema.reward_field = spec.reward_field;
  schema.propensity_field = spec.propensity_field;
  schema.num_actions = 4;
  schema.reward_lo = 0.0;
  schema.reward_hi = 1.0;
  Writer writer(out, schema, {.rows_per_block = 200, .blocks_per_shard = 2});
  logs::ScavengeSpec compact_spec = spec;
  compact_spec.reward_transform = [](double r) { return r; };
  compact_spec.on_harvest = [&](const logs::Record& rec,
                                const core::ExplorationPoint& point) {
    writer.add(rec.time, point.context.values(), point.action, point.reward,
               point.propensity);
  };
  const logs::ScavengeResult compacted = logs::scavenge(log, compact_spec);
  Counts counts;
  counts.records_seen = compacted.records_seen;
  counts.decisions_seen = compacted.decisions_seen;
  counts.dropped_missing_fields = compacted.dropped_missing_fields;
  counts.dropped_bad_action = compacted.dropped_bad_action;
  counts.dropped_bad_propensity = compacted.dropped_bad_propensity;
  counts.dropped_stale_timestamp = compacted.dropped_stale_timestamp;
  writer.set_counts(counts);
  writer.finish();

  const Reader reader = Reader::from_memory(out.str());
  const logs::ScavengeResult from_text = logs::scavenge(log, spec);
  const logs::ScavengeResult from_hlog = logs::scavenge(reader, spec);

  EXPECT_EQ(from_hlog.records_seen, from_text.records_seen);
  EXPECT_EQ(from_hlog.decisions_seen, from_text.decisions_seen);
  EXPECT_EQ(from_hlog.dropped_missing_fields, from_text.dropped_missing_fields);
  EXPECT_EQ(from_hlog.dropped_bad_action, from_text.dropped_bad_action);
  EXPECT_EQ(from_hlog.dropped_bad_propensity,
            from_text.dropped_bad_propensity);
  EXPECT_EQ(from_hlog.dropped_corrupt_block, 0u);
  ASSERT_EQ(from_hlog.data.size(), from_text.data.size());
  for (std::size_t i = 0; i < from_text.data.size(); ++i) {
    const core::ExplorationPoint& a = from_text.data[i];
    const core::ExplorationPoint& b = from_hlog.data[i];
    ASSERT_EQ(a.action, b.action) << "row " << i;
    ASSERT_EQ(std::memcmp(&a.reward, &b.reward, sizeof(double)), 0)
        << "row " << i;
    ASSERT_EQ(std::memcmp(&a.propensity, &b.propensity, sizeof(double)), 0)
        << "row " << i;
    ASSERT_EQ(a.context.size(), b.context.size());
    for (std::size_t f = 0; f < a.context.size(); ++f) {
      const double fa = a.context[f];
      const double fb = b.context[f];
      ASSERT_EQ(std::memcmp(&fa, &fb, sizeof(double)), 0)
          << "row " << i << " feature " << f;
    }
  }
}

TEST(StoreRoundTripTest, ScavengeRefusesMismatchedSpec) {
  const std::string bytes =
      write_rows(random_rows(50, 2, 3), test_schema(2), {});
  const Reader reader = Reader::from_memory(bytes);
  logs::ScavengeSpec spec;
  spec.decision_event = "decide";
  spec.context_fields = {"f0", "f1"};
  spec.action_field = "a";
  spec.reward_field = "WRONG";
  spec.propensity_field = "p";
  spec.num_actions = 16;
  spec.reward_range = {-2.0, 2.0};
  spec.reward_transform = [](double r) { return r; };
  EXPECT_THROW(logs::scavenge(reader, spec), std::invalid_argument);
}

TEST(StoreRoundTripTest, EmptyCorpusRoundTrips) {
  const std::string bytes = write_rows({}, test_schema(1), {});
  const Reader reader = Reader::from_memory(bytes);
  EXPECT_EQ(reader.rows(), 0u);
  const ScanResult scan = reader.scan();
  EXPECT_EQ(scan.rows(), 0u);
  EXPECT_TRUE(scan.quarantined.empty());
}

/// Low-cardinality context fields (with adversarial bit patterns: -0.0 and
/// NaN as distinct dictionary entries) round-trip bit-exactly through the
/// dictionary coder, shrink the file, and survive dictionary overflow by
/// falling back to raw encoding mid-shard.
TEST(StoreRoundTripTest, DictionaryCodedContextRoundTripsBitExactly) {
  util::Rng rng(314);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double specials[] = {0.0, -0.0, nan, 1.5, -7.25, 1e300};
  std::vector<Row> rows;
  for (std::size_t i = 0; i < 1500; ++i) {
    Row row;
    row.time = static_cast<double>(i);
    // f0: 6 distinct bit patterns (dict-coded); f1: continuous (raw).
    row.context = {specials[rng.uniform_index(6)], rng.normal(0.0, 100.0)};
    row.action = static_cast<std::uint32_t>(rng.uniform_index(16));
    row.reward = rng.uniform(-2.0, 2.0);
    row.propensity = rng.uniform(1e-6, 1.0);
    rows.push_back(std::move(row));
  }
  const Schema schema = test_schema(2);
  const std::string dict_bytes = write_rows(
      rows, schema,
      {.rows_per_block = 64, .blocks_per_shard = 4, .max_dict_entries = 256});
  const std::string raw_bytes = write_rows(
      rows, schema,
      {.rows_per_block = 64, .blocks_per_shard = 4, .max_dict_entries = 0});
  EXPECT_LT(dict_bytes.size(), raw_bytes.size())
      << "dictionary coding should shrink a low-cardinality column";

  for (const std::string* bytes : {&dict_bytes, &raw_bytes}) {
    const Reader reader = Reader::from_memory(*bytes);
    const ScanResult scan = reader.scan();
    ASSERT_EQ(scan.rows(), rows.size());
    EXPECT_TRUE(scan.quarantined.empty());
    std::vector<double> context;
    for (const auto& row : rows) {
      context.insert(context.end(), row.context.begin(), row.context.end());
    }
    expect_bits_equal(scan.context, context, "context");
  }

  // Overflow: a 4-entry budget against 6+ distinct values trips the
  // rollback-and-go-raw path partway through a shard; the data must still
  // round-trip bit-exactly (just without the size win).
  const std::string overflow_bytes = write_rows(
      rows, schema,
      {.rows_per_block = 64, .blocks_per_shard = 4, .max_dict_entries = 4});
  const Reader reader = Reader::from_memory(overflow_bytes);
  const ScanResult scan = reader.scan();
  ASSERT_EQ(scan.rows(), rows.size());
  EXPECT_TRUE(scan.quarantined.empty());
  std::vector<double> context;
  for (const auto& row : rows) {
    context.insert(context.end(), row.context.begin(), row.context.end());
  }
  expect_bits_equal(scan.context, context, "context after overflow");
}

/// A partitioned dataset round-trips: DatasetWriter rolls part files at the
/// configured row count, the manifest ledger adds up, and Dataset::scan
/// returns the same columns as writing everything into one file.
TEST(StoreRoundTripTest, DatasetRoundTripsAcrossPartFiles) {
  const auto rows = random_rows(1003, 2, 55);  // prime: ragged last part
  const Schema schema = test_schema(2);
  const WriterOptions options{.rows_per_block = 32, .blocks_per_shard = 2};
  const std::string dir = testing::TempDir() + "hlog_dataset_roundtrip";
  std::filesystem::remove_all(dir);
  {
    DatasetWriter writer(dir, schema, options, 256);
    for (const auto& row : rows) {
      writer.add(row.time, row.context, row.action, row.reward,
                 row.propensity);
    }
    writer.finish();
  }
  ASSERT_TRUE(is_dataset_dir(dir));

  const Dataset dataset = Dataset::open(dir);
  EXPECT_EQ(dataset.rows(), rows.size());
  EXPECT_EQ(dataset.manifest().shards.size(), (rows.size() + 255) / 256);
  EXPECT_EQ(dataset.schema(), schema);
  std::uint64_t part_total = 0;
  for (const auto& shard : dataset.manifest().shards) {
    part_total += shard.counts.rows;
  }
  EXPECT_EQ(part_total, rows.size());

  const ScanResult scan = dataset.scan();
  const std::string single = write_rows(rows, schema, options);
  const ScanResult expected = Reader::from_memory(single).scan();
  ASSERT_EQ(scan.rows(), rows.size());
  EXPECT_TRUE(scan.quarantined.empty());
  expect_bits_equal(scan.time, expected.time, "time");
  expect_bits_equal(scan.context, expected.context, "context");
  expect_bits_equal(scan.reward, expected.reward, "reward");
  expect_bits_equal(scan.propensity, expected.propensity, "propensity");
  EXPECT_EQ(scan.action, expected.action);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace harvest::store
