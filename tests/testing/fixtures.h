// Shared synthetic-environment builders for the property suites. These used
// to be duplicated per test file; the determinism suite reuses them too, so
// any change to an environment here deliberately shows up in every suite
// that samples from it.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/policies/basic.h"
#include "core/policy.h"
#include "core/trajectory.h"
#include "lb/frontdoor.h"
#include "lb/routers.h"
#include "util/rng.h"

namespace harvest::testing {

/// Synthetic bandit environment: 3 actions, reward of action a for context x
/// is a known deterministic function; context scalar drawn uniform in [0,1].
inline core::FullFeedbackDataset make_environment(std::size_t n,
                                                  util::Rng& rng) {
  core::FullFeedbackDataset data(3, core::RewardRange{0, 1});
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform();
    data.add(core::FullFeedbackPoint{
        core::FeatureVector{x},
        {0.5 * x + 0.2, 0.9 - 0.6 * x, 0.5}});
  }
  return data;
}

/// Logging policies of increasing structure: uniform, epsilon-greedy around
/// a constant, and context-dependent randomized.
inline core::PolicyPtr make_logging_policy(int kind) {
  switch (kind) {
    case 0:
      return std::make_shared<core::UniformRandomPolicy>(3);
    case 1:
      return std::make_shared<core::EpsilonGreedyPolicy>(
          std::make_shared<core::ConstantPolicy>(3, 1), 0.3);
    default: {
      // Context-dependent randomized logging.
      auto base = std::make_shared<core::FunctionPolicy>(
          3,
          [](const core::FeatureVector& x) { return x[0] > 0.5 ? 0u : 2u; },
          "ctx-split");
      return std::make_shared<core::EpsilonGreedyPolicy>(base, 0.5);
    }
  }
}

/// Candidate policies: constant, threshold on the context, and uniform.
inline core::PolicyPtr make_candidate_policy(int kind) {
  switch (kind) {
    case 0:
      return std::make_shared<core::ConstantPolicy>(3, 0);
    case 1:
      return std::make_shared<core::FunctionPolicy>(
          3,
          [](const core::FeatureVector& x) { return x[0] > 0.4 ? 0u : 1u; },
          "threshold");
    default:
      return std::make_shared<core::UniformRandomPolicy>(3);
  }
}

/// Chain environment with context feedback: the context counts how many of
/// the last steps chose action 1 (normalized). Rewards depend on both the
/// action and that action-history context, so stepwise IPS is biased for
/// any policy whose action frequencies differ from the logging policy's.
inline core::TrajectoryDataset simulate_chain(std::size_t episodes,
                                              std::size_t horizon, double p1,
                                              util::Rng& rng) {
  core::TrajectoryDataset data(2, {0.0, 1.0});
  for (std::size_t e = 0; e < episodes; ++e) {
    core::Trajectory t;
    double ones = 0;
    for (std::size_t s = 0; s < horizon; ++s) {
      const double load = s == 0 ? 0.0 : ones / static_cast<double>(s);
      const core::ActionId a = rng.bernoulli(p1) ? 1 : 0;
      // Action 1 is attractive in isolation but degrades the chain.
      const double r = a == 1 ? 0.9 - 0.5 * load : 0.4 + 0.1 * load;
      t.steps.push_back(
          {core::FeatureVector{load}, a, r, a == 1 ? p1 : 1.0 - p1});
      ones += a == 1 ? 1.0 : 0.0;
    }
    data.add(std::move(t));
  }
  return data;
}

/// Exact value of always-1 in the chain of horizon H:
/// load_t = t/t = 1 for t >= 1 (all previous were 1), load_0 = 0.
inline double truth_always1(std::size_t horizon) {
  double total = 0.9;  // step 0: load 0
  for (std::size_t s = 1; s < horizon; ++s) total += 0.9 - 0.5;
  return total / static_cast<double>(horizon);
}

/// Every LB router kind exercised by the invariant sweeps.
inline lb::RouterPtr make_router(const std::string& kind) {
  if (kind == "random") return std::make_unique<lb::RandomRouter>(2);
  if (kind == "round-robin") {
    return std::make_unique<lb::RoundRobinRouter>(2);
  }
  if (kind == "least-loaded") {
    return std::make_unique<lb::LeastLoadedRouter>(2);
  }
  if (kind == "send-to-1") return std::make_unique<lb::SendToRouter>(2, 0);
  if (kind == "weighted") {
    return std::make_unique<lb::WeightedRandomRouter>(
        std::vector<double>{1.0, 3.0});
  }
  if (kind == "epoch") {
    return std::make_unique<lb::EpochWeightedRandomRouter>(2, 200, 0.5);
  }
  // CB router over a fixed linear policy.
  return std::make_unique<lb::CbRouter>(
      std::make_shared<core::FunctionPolicy>(
          2,
          [](const core::FeatureVector& x) {
            return x[0] <= x[1] + 5 ? 0u : 1u;
          },
          "offset-least-loaded"));
}

}  // namespace harvest::testing
