#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace harvest::util {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"n", "value"});
  csv.row({"10", "0.5"});
  csv.row_numeric({20, 0.25});
  EXPECT_EQ(out.str(), "n,value\n10,0.5\n20,0.25\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out, {"a"});
  csv.row({"hello, world"});
  csv.row({"say \"hi\""});
  EXPECT_EQ(out.str(), "a\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, RejectsWrongWidth) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, AlignsColumns) {
  Table table({"Policy", "Value"});
  table.add_row({"random", "0.44"});
  table.add_row({"least-loaded-very-long", "0.36"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Policy"), std::string::npos);
  EXPECT_NE(text.find("least-loaded-very-long"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableTest, NumericRowFormatting) {
  Table table({"name", "x", "y"});
  table.add_row("row", {1.23456, 7.0}, 2);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("1.23"), std::string::npos);
  EXPECT_NE(out.str().find("7.00"), std::string::npos);
}

TEST(TableTest, RejectsRaggedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::util
