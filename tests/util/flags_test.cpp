#include "util/flags.h"

#include <gtest/gtest.h>

namespace harvest::util {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const auto flags = make_flags({"--n=100", "--rate=3.5", "--name=test"});
  EXPECT_EQ(flags.get_int("n", 0), 100);
  EXPECT_EQ(flags.get_double("rate", 0), 3.5);
  EXPECT_EQ(flags.get_string("name", ""), "test");
}

TEST(FlagsTest, SpaceSyntax) {
  const auto flags = make_flags({"--n", "7", "--label", "x"});
  EXPECT_EQ(flags.get_int("n", 0), 7);
  EXPECT_EQ(flags.get_string("label", ""), "x");
}

TEST(FlagsTest, BareBooleanFlag) {
  const auto flags = make_flags({"--verbose", "--quick=false"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("quick", true));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const auto flags = make_flags({});
  EXPECT_EQ(flags.get_int("n", 42), 42);
  EXPECT_EQ(flags.get_double("x", 1.5), 1.5);
  EXPECT_EQ(flags.get_string("s", "d"), "d");
  EXPECT_FALSE(flags.has("n"));
}

TEST(FlagsTest, PositionalArguments) {
  const auto flags = make_flags({"input.log", "--n=1", "output.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.log");
  EXPECT_EQ(flags.positional()[1], "output.csv");
}

TEST(FlagsTest, ThrowsOnTypeMismatch) {
  const auto flags = make_flags({"--n=abc"});
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_double("n", 0), std::invalid_argument);
}

}  // namespace
}  // namespace harvest::util
