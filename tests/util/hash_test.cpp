#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace harvest::util {
namespace {

TEST(HashTest, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(fnv1a64("harvest"), fnv1a64(std::string("harvest")));
  EXPECT_EQ(fnv1a64(std::uint64_t{12345}), fnv1a64(std::uint64_t{12345}));
}

TEST(HashTest, IntegerHashDiffersFromNeighbour) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) hashes.insert(fnv1a64(i));
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small dense range
}

TEST(HashTest, HashCombineOrderSensitive) {
  const auto ab = hash_combine(fnv1a64("a"), fnv1a64("b"));
  const auto ba = hash_combine(fnv1a64("b"), fnv1a64("a"));
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace harvest::util
