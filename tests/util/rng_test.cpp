#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

namespace harvest::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndRange) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 6.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(3);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 100);
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCasesAndMean) {
  Rng rng(9);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(19);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);  // zero-weight never chosen
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalRejectsDegenerateWeights) {
  Rng rng(29);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooLarge) {
  Rng rng(37);
  const auto sample = rng.sample_without_replacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(55);
  Rng child = parent.split();
  // Child and parent should produce decorrelated sequences.
  double corr_same = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double a = parent.uniform() - 0.5;
    const double b = child.uniform() - 0.5;
    corr_same += a * b;
  }
  EXPECT_NEAR(corr_same / n, 0.0, 0.005);
}

}  // namespace
}  // namespace harvest::util
