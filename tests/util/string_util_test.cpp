#include "util/string_util.h"

#include <gtest/gtest.h>

namespace harvest::util {
namespace {

TEST(StringUtilTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitEmptyStringYieldsOneField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_EQ(parse_double("3.5"), 3.5);
  EXPECT_EQ(parse_double(" -2e3 "), -2000.0);
  EXPECT_FALSE(parse_double("3.5x"));
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
}

TEST(StringUtilTest, ParseDoubleAcceptsExplicitPlus) {
  // std::from_chars rejects a leading '+', but foreign log producers emit it;
  // parse_double must accept exactly one.
  EXPECT_EQ(parse_double("+0.1"), 0.1);
  EXPECT_EQ(parse_double("+3e2"), 300.0);
  EXPECT_EQ(parse_double(" +1.5 "), 1.5);
  EXPECT_FALSE(parse_double("+"));
  EXPECT_FALSE(parse_double("++1"));
  EXPECT_FALSE(parse_double("+-1"));
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4.2"));
  EXPECT_FALSE(parse_int("12abc"));
  EXPECT_FALSE(parse_int(""));
}

TEST(StringUtilTest, ParseIntAcceptsExplicitPlus) {
  EXPECT_EQ(parse_int("+42"), 42);
  EXPECT_EQ(parse_int("+0"), 0);
  EXPECT_FALSE(parse_int("+"));
  EXPECT_FALSE(parse_int("++42"));
  EXPECT_FALSE(parse_int("+-42"));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
  EXPECT_EQ(format_double(100.0, 0), "100");
}

}  // namespace
}  // namespace harvest::util
