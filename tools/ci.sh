#!/usr/bin/env bash
# CI entry point: configure, build, and run the full test suite.
#
#   tools/ci.sh                 # plain RelWithDebInfo build + ctest
#   tools/ci.sh address         # ASan build + ctest
#   tools/ci.sh undefined       # UBSan build + ctest
#   tools/ci.sh address,undefined
#
# The build tree goes to build-ci[-<sanitizer>] so it never collides with a
# developer's ./build.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${1:-}"
BUILD_DIR="build-ci"
CMAKE_ARGS=()
if [[ -n "$SANITIZE" ]]; then
  BUILD_DIR="build-ci-${SANITIZE//,/-}"
  CMAKE_ARGS+=("-DHARVEST_SANITIZE=${SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
