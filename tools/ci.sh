#!/usr/bin/env bash
# CI entry point: configure, build, and run the test suite in labeled stages.
#
#   tools/ci.sh                 # plain RelWithDebInfo build + staged ctest
#   tools/ci.sh address         # ASan build
#   tools/ci.sh undefined       # UBSan build
#   tools/ci.sh address,undefined
#   tools/ci.sh thread          # TSan build (exercises par/ + obs stress)
#
# Stages run fast-to-slow so cheap failures surface first:
#   unit -> property -> integration -> stress
# then the unlabeled tests (tool smoke tests), then a determinism smoke:
# fig3 at --threads 1 vs --threads 8 must emit byte-identical stdout.
#
# The build tree goes to build-ci[-<sanitizer>] so it never collides with a
# developer's ./build.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${1:-}"
BUILD_DIR="build-ci"
CMAKE_ARGS=()
if [[ -n "$SANITIZE" ]]; then
  BUILD_DIR="build-ci-${SANITIZE//,/-}"
  CMAKE_ARGS+=("-DHARVEST_SANITIZE=${SANITIZE}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

for label in unit property integration stress; do
  echo "==> ctest -L ${label}"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L "$label" -j "$(nproc)"
done

echo "==> ctest (unlabeled: tool smoke tests)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -LE \
  'unit|property|integration|stress' -j "$(nproc)"

echo "==> determinism smoke: fig3 --threads 1 vs --threads 8"
T1_OUT="$(mktemp)"
T8_OUT="$(mktemp)"
trap 'rm -f "$T1_OUT" "$T8_OUT"' EXIT
"$BUILD_DIR/bench/fig3_ips_error" --fast --threads 1 > "$T1_OUT"
"$BUILD_DIR/bench/fig3_ips_error" --fast --threads 8 > "$T8_OUT"
if ! diff -q "$T1_OUT" "$T8_OUT" > /dev/null; then
  echo "FAIL: fig3 stdout differs between --threads 1 and --threads 8" >&2
  diff "$T1_OUT" "$T8_OUT" >&2 || true
  exit 1
fi
echo "ok: byte-identical output at 1 and 8 threads"

echo "==> chaos ingestion: corrupted-log sweep + injection-off identity"
# The hardened read path must degrade gracefully on corrupted logs (the
# bench's own shape check exits nonzero if error does not grow with the
# corruption rate), and with injection off harvest_inspect must emit the
# same bytes as a run with no --inject flag at all.
"$BUILD_DIR/bench/chaos_ingestion" --fast > /dev/null
"$BUILD_DIR/tools/harvest_inspect" --selftest \
  --inject "torn=0.05,dup=0.02,corrupt=0.03,bad-p=0.01" --inject-seed 7 \
  > /dev/null
"$BUILD_DIR/tools/harvest_inspect" --selftest > "$T1_OUT"
"$BUILD_DIR/tools/harvest_inspect" --selftest --inject "" > "$T8_OUT"
if ! diff -q "$T1_OUT" <(tail -n +2 "$T8_OUT") > /dev/null; then
  echo "FAIL: --inject \"\" changes harvest_inspect output beyond the" \
       "injection report line" >&2
  exit 1
fi
echo "ok: chaos sweep monotone; injection-off output identical"

echo "==> store: compact fixture corpus, text-vs-HLOG identity, corruption"
STORE_DIR="$(mktemp -d)"
trap 'rm -f "$T1_OUT" "$T8_OUT"; rm -rf "$STORE_DIR"' EXIT
"$BUILD_DIR/tools/harvest_compact" --make-demo "$STORE_DIR/demo.log" \
  --demo-records 20000
# --verify scavenges the text and the HLOG output and requires the datasets
# to be bit-identical; run it at 1 and 8 threads to cover the parallel scan.
for threads in 1 8; do
  "$BUILD_DIR/tools/harvest_compact" "$STORE_DIR/demo.log" \
    "$STORE_DIR/demo.hlog" \
    --event decide --context load --action choice --reward reward \
    --actions 3 --reward-lo=-0.5 --reward-hi 1.5 \
    --rows-per-block 512 --blocks-per-shard 4 \
    --threads "$threads" --verify > /dev/null
done
# Compaction must be deterministic: same text in, same bytes out.
"$BUILD_DIR/tools/harvest_compact" "$STORE_DIR/demo.log" \
  "$STORE_DIR/demo2.hlog" \
  --event decide --context load --action choice --reward reward \
  --actions 3 --reward-lo=-0.5 --reward-hi 1.5 \
  --rows-per-block 512 --blocks-per-shard 4 > /dev/null
if ! cmp -s "$STORE_DIR/demo.hlog" "$STORE_DIR/demo2.hlog"; then
  echo "FAIL: harvest_compact output is not deterministic" >&2
  exit 1
fi
# Corrupted-block sweep: damaged corpora must still be analyzable, with the
# damage ledgered as corrupt-block quarantine instead of a crash.
for frac in 0.1 0.5; do
  "$BUILD_DIR/tools/harvest_compact" "$STORE_DIR/demo.log" \
    "$STORE_DIR/bad.hlog" \
    --event decide --context load --action choice --reward reward \
    --actions 3 --reward-lo=-0.5 --reward-hi 1.5 \
    --rows-per-block 512 --blocks-per-shard 4 \
    --corrupt-blocks "$frac" --corrupt-seed 7 > /dev/null
  "$BUILD_DIR/tools/harvest_inspect" "$STORE_DIR/bad.hlog" \
    --diagnostics > /dev/null
done
echo "ok: HLOG round-trip identical at 1 and 8 threads; corruption quarantined"

echo "==> store: partitioned dataset + parallel merge round-trip"
# Text -> dataset directory (manifest + part files), verified against the
# text scavenge, then autodetected by harvest_inspect.
"$BUILD_DIR/tools/harvest_compact" "$STORE_DIR/demo.log" "$STORE_DIR/ds" \
  --event decide --context load --action choice --reward reward \
  --actions 3 --reward-lo=-0.5 --reward-hi 1.5 \
  --partition-rows 4096 --rows-per-block 512 --blocks-per-shard 4 \
  --verify > /dev/null
"$BUILD_DIR/tools/harvest_inspect" "$STORE_DIR/ds" --diagnostics > /dev/null
# Zone-map pushdown: a time-windowed inspect over the dataset must prune.
"$BUILD_DIR/tools/harvest_inspect" "$STORE_DIR/ds" --min-time 9000 \
  > "$STORE_DIR/inspect_window.txt"
grep -q "pruning: predicate" "$STORE_DIR/inspect_window.txt" \
  || { echo "FAIL: no pruning summary for a windowed inspect" >&2; exit 1; }
# Merge the dataset's parts plus a standalone file into one shard file,
# twice at different thread counts: byte-identical output or fail.
"$BUILD_DIR/tools/harvest_compact" --merge "$STORE_DIR/merged1.hlog" \
  "$STORE_DIR/ds" "$STORE_DIR/demo.hlog" --threads 1 > /dev/null
"$BUILD_DIR/tools/harvest_compact" --merge "$STORE_DIR/merged8.hlog" \
  "$STORE_DIR/ds" "$STORE_DIR/demo.hlog" --threads 8 > /dev/null
if ! cmp -s "$STORE_DIR/merged1.hlog" "$STORE_DIR/merged8.hlog"; then
  echo "FAIL: merge output differs between --threads 1 and --threads 8" >&2
  exit 1
fi
# Chaos on one named member of the dataset: the damage must stay confined
# to that shard and surface as corrupt-block quarantine on the next scan.
"$BUILD_DIR/tools/harvest_compact" --corrupt "$STORE_DIR/ds" \
  --corrupt-blocks 0.5 --corrupt-seed 3 \
  --corrupt-shard part-00001.hlog > /dev/null
"$BUILD_DIR/tools/harvest_inspect" "$STORE_DIR/ds" --diagnostics \
  > "$STORE_DIR/inspect_damaged.txt"
grep -q "corrupt-block" "$STORE_DIR/inspect_damaged.txt" \
  || { echo "FAIL: shard corruption not ledgered as corrupt-block" >&2; \
       exit 1; }
# And merging the damaged dataset must conserve the ledger (the tool exits
# nonzero when kept + quarantined != input rows).
"$BUILD_DIR/tools/harvest_compact" --merge "$STORE_DIR/merged-dmg.hlog" \
  "$STORE_DIR/ds" --threads 8 > /dev/null
echo "ok: dataset verified; merge byte-identical at 1 and 8 threads;" \
     "shard chaos ledgered and conserved"

if [[ -z "$SANITIZE" ]]; then
  echo "==> ingestion throughput: HLOG scan must beat text parse >= 3x"
  "$BUILD_DIR/bench/ingestion_throughput" --fast --threads 4 --reps 3 \
    --min-speedup 3 --json-out "$STORE_DIR/ingest_classic.json"
  echo "==> scale-out ingestion: zone-map pruning must deliver >= 10x"
  # 10M rows synthesized into a partitioned dataset; the bench itself
  # asserts pruned == filtered, scan conservation, and merge determinism.
  "$BUILD_DIR/bench/ingestion_throughput" --rows 10000000 --reps 3 \
    --workdir "$STORE_DIR/ingest_scaled" --min-prune-speedup 10 \
    --json-out "$STORE_DIR/ingest_scaled.json"
  # Refresh the committed snapshot with both modes.
  printf '{"classic": %s, "scaled": %s}\n' \
    "$(cat "$STORE_DIR/ingest_classic.json")" \
    "$(cat "$STORE_DIR/ingest_scaled.json")" > BENCH_ingestion.json
fi

echo "==> obs: recorder overhead gate + trace analyzer round-trip"
if [[ -z "$SANITIZE" ]]; then
  # The flight recorder must be ~free on the hot path: instrumented
  # scavenge->estimate within 5% of baseline, and default configs drop-free.
  # The JSON snapshot is committed so perf regressions show up in review.
  "$BUILD_DIR/bench/obs_overhead" --reps 5 --records 8000 --iters 4 \
    --max-overhead 0.05 --json-out BENCH_obs.json
else
  # Sanitizer builds skew timing; run the bench for coverage, gate off.
  "$BUILD_DIR/bench/obs_overhead" --fast > /dev/null
fi
# A real bench run must produce a chrome trace the analyzer can read back
# into per-worker utilization and a critical path.
OBS_TRACE="$STORE_DIR/table2.trace.json"
"$BUILD_DIR/bench/table2_load_balancing" --fast --threads 4 \
  --trace-out "$OBS_TRACE" --trace-format chrome > /dev/null
OBS_REPORT="$("$BUILD_DIR/tools/harvest_trace" "$OBS_TRACE")"
for needle in "per-worker utilization" "critical path" "par.task"; do
  if ! grep -q "$needle" <<< "$OBS_REPORT"; then
    echo "FAIL: harvest_trace report missing '$needle'" >&2
    echo "$OBS_REPORT" >&2
    exit 1
  fi
done
echo "ok: overhead within gate; trace analyzer reconstructs worker report"

echo "==> serve: closed-loop harvest (serve -> HLOG -> retrain -> swap)"
# Three rounds of the online loop: the retrained snapshots must lift the
# mean reward above the round-0 uniform-randomization baseline.
"$BUILD_DIR/tools/harvest_serve" --rounds 3 --decisions 6000 --threads 2 \
  --workdir "$STORE_DIR/serve_loop" --check-improvement > /dev/null
echo "ok: closed loop improves on the logging policy"

echo "==> serve: crash-safe persistence (kill -9 mid-loop -> --resume)"
# A run with --snapshot-dir must leave a resumable store behind even when
# killed mid-loop, and a corrupted snapshot must cost a quarantine, never a
# crash. First a fresh run for the uniform round-0 baseline.
SERVE_DIR="$STORE_DIR/serve_persist"
"$BUILD_DIR/tools/harvest_serve" --rounds 2 --decisions 6000 --threads 2 \
  --workdir "$SERVE_DIR" --snapshot-dir "$STORE_DIR/snap_fresh" \
  > "$STORE_DIR/serve_fresh.txt"
UNIFORM_MEAN="$(awk '/^round 0:/ { sub(/.*mean_reward=/, ""); print $1 }' \
  "$STORE_DIR/serve_fresh.txt")"
[[ -f "$STORE_DIR/snap_fresh/CURRENT" ]] \
  || { echo "FAIL: --snapshot-dir run left no CURRENT pointer" >&2; exit 1; }
# Kill a long run as soon as its first snapshot lands on disk.
SNAP_DIR="$STORE_DIR/snap_killed"
"$BUILD_DIR/tools/harvest_serve" --rounds 200 --decisions 6000 --threads 2 \
  --workdir "$SERVE_DIR" --snapshot-dir "$SNAP_DIR" > /dev/null &
SERVE_PID=$!
for _ in $(seq 1 200); do
  [[ -f "$SNAP_DIR/CURRENT" ]] && break
  sleep 0.05
done
[[ -f "$SNAP_DIR/CURRENT" ]] \
  || { echo "FAIL: killed run published no snapshot within 10s" >&2; exit 1; }
sleep 0.2  # let a couple more rounds publish before the kill
kill -9 "$SERVE_PID" 2> /dev/null || true
wait "$SERVE_PID" 2> /dev/null || true
# The restarted loop must warm-start from the killed run's last snapshot:
# its round 0 serves a retrained policy, not uniform, so its mean must beat
# the fresh run's uniform round 0 by a clear margin.
"$BUILD_DIR/tools/harvest_serve" --rounds 2 --decisions 6000 --threads 2 \
  --workdir "$SERVE_DIR" --snapshot-dir "$SNAP_DIR" --resume \
  > "$STORE_DIR/serve_resumed.txt"
grep -q "^resumed from snapshot id=" "$STORE_DIR/serve_resumed.txt" \
  || { echo "FAIL: --resume did not resume from the killed run's store" >&2; \
       cat "$STORE_DIR/serve_resumed.txt" >&2; exit 1; }
RESUMED_MEAN="$(awk '/^round 0:/ { sub(/.*mean_reward=/, ""); print $1 }' \
  "$STORE_DIR/serve_resumed.txt")"
awk -v fresh="$UNIFORM_MEAN" -v resumed="$RESUMED_MEAN" \
  'BEGIN { exit !(resumed > fresh + 0.02) }' \
  || { echo "FAIL: resumed round 0 (${RESUMED_MEAN}) does not beat the" \
            "uniform round 0 (${UNIFORM_MEAN})" >&2; exit 1; }
# Corrupt the CURRENT target: the next --resume must quarantine it, fall
# back to an older intact snapshot, and exit 0.
head -c 64 /dev/zero > "$SNAP_DIR/$(cat "$SNAP_DIR/CURRENT")"
"$BUILD_DIR/tools/harvest_serve" --rounds 1 --decisions 6000 --threads 2 \
  --workdir "$SERVE_DIR" --snapshot-dir "$SNAP_DIR" --resume \
  > "$STORE_DIR/serve_quarantine.txt" 2> "$STORE_DIR/serve_quarantine.err"
grep -q "quarantined" "$STORE_DIR/serve_quarantine.err" \
  || { echo "FAIL: corrupted snapshot was not quarantined" >&2; exit 1; }
grep -q "^resumed from snapshot id=" "$STORE_DIR/serve_quarantine.txt" \
  || { echo "FAIL: no fallback resume after quarantine" >&2; exit 1; }
ls "$SNAP_DIR"/*.quarantined > /dev/null 2>&1 \
  || { echo "FAIL: no .quarantined file left behind" >&2; exit 1; }
echo "ok: kill -9 mid-loop resumed from disk (uniform ${UNIFORM_MEAN} ->" \
     "resumed ${RESUMED_MEAN}); corruption quarantined with fallback"

echo "==> design: plan -> serve under the plan -> measured variance gate"
# The full design loop on a small synthetic harvest: the planner must beat
# (or tie) its own eps-greedy baseline on the predicted worst-case OPE
# variance, and the variance measured on the planned arm's re-harvest must
# be no worse than the eps-greedy control arm serving the same contexts.
if [[ -z "$SANITIZE" ]]; then
  # Refresh the committed snapshot on plain runs.
  "$BUILD_DIR/tools/harvest_design" --selfloop --decisions 12000 \
    --threads 2 --workdir "$STORE_DIR/design_loop" --check \
    --bench BENCH_design.json > /dev/null
else
  "$BUILD_DIR/tools/harvest_design" --selfloop --decisions 12000 \
    --threads 2 --workdir "$STORE_DIR/design_loop" --check > /dev/null
fi
# The emitted plan must round-trip through the offline mode (JSON parse +
# re-plan from the same harvest).
"$BUILD_DIR/tools/harvest_design" \
  --harvest "$STORE_DIR/design_loop/harvest0" \
  --out "$STORE_DIR/design_loop/plan_offline.json" > /dev/null
# Propensity pushdown on the CLI: carve the low-propensity exploration
# stratum out of the eps-greedy control arm (propensities there are exactly
# eps/K or 1-eps+eps/K, so --max-propensity 0.5 selects the exploration
# draws) and prove the selection conserves rows and is scannable.
"$BUILD_DIR/tools/harvest_compact" \
  --merge "$STORE_DIR/design_loop/explore_stratum.hlog" \
  "$STORE_DIR/design_loop/arm_epsgreedy" --max-propensity 0.5 \
  | grep -q "conservation: .* OK" \
  || { echo "FAIL: propensity-filtered merge broke conservation" >&2; exit 1; }
"$BUILD_DIR/tools/harvest_inspect" \
  "$STORE_DIR/design_loop/explore_stratum.hlog" --min-propensity 0.01 \
  | grep -q "pruning: predicate" \
  || { echo "FAIL: inspect printed no pruning summary" >&2; exit 1; }
echo "ok: planned logging never worse than eps-greedy; plan JSON" \
     "round-trips; propensity stratum extraction conserves rows"

if [[ -z "$SANITIZE" ]]; then
  echo "==> serve: throughput + tail-latency + zero-allocation gate"
  # Conservative container-safe thresholds; the committed JSON tracks the
  # real numbers. The gate itself exits nonzero on < --min-mops decisions
  # per second per core, p99 above --max-p99-us, or ANY decide-path
  # allocation (counted by the harvest_allocgate allocator override).
  "$BUILD_DIR/bench/micro_decision_latency" --serve-throughput \
    --serve-threads 2 --serve-seconds 2 --swap-ms 5 \
    --min-mops 1 --max-p99-us 500 --json-out BENCH_serve.json
  echo "ok: serve gate passed; BENCH_serve.json refreshed"
fi

if [[ -z "$SANITIZE" ]]; then
  echo "==> obs + serve: stress suites under TSan"
  # The SPSC handoff (drain-while-recording) and the snapshot swap/reclaim
  # protocol are the races this repo's memory orderings exist to make safe;
  # prove both under the analyzer even on plain CI runs.
  cmake -B build-ci-obs-tsan -S . -DHARVEST_SANITIZE=thread
  cmake --build build-ci-obs-tsan -j "$(nproc)" \
    --target recorder_stress_tests serve_stress_tests
  ctest --test-dir build-ci-obs-tsan --output-on-failure \
    -R 'RecorderStressTest|ServeStressTest' -j "$(nproc)"
  echo "ok: recorder + serve stress clean under TSan"
fi
