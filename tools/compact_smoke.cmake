# End-to-end smoke for the HLOG tooling, run as a ctest:
#   1. generate the demo text corpus,
#   2. compact it with --verify (text and HLOG scavenges must be
#      bit-identical, exercised at 2 worker threads),
#   3. feed the HLOG file to harvest_inspect via format autodetection,
#   4. corrupt a fraction of blocks and confirm both tools still run,
#      quarantining instead of failing.
# Driven by: cmake -DCOMPACT=... -DINSPECT=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY ${WORK_DIR})
set(DEMO ${WORK_DIR}/demo.log)
set(HLOG ${WORK_DIR}/demo.hlog)
set(BAD ${WORK_DIR}/demo_corrupt.hlog)

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGV}")
  endif()
endfunction()

run(${COMPACT} --make-demo ${DEMO} --demo-records 4000)
run(${COMPACT} ${DEMO} ${HLOG}
    --event decide --context load --action choice --reward reward
    --actions 3 --reward-lo=-0.5 --reward-hi 1.5
    --rows-per-block 256 --blocks-per-shard 4 --threads 2 --verify)
run(${INSPECT} ${HLOG} --diagnostics)

# Chaos leg: one corrupted block must be quarantined, not fatal.
run(${COMPACT} ${DEMO} ${BAD}
    --event decide --context load --action choice --reward reward
    --actions 3 --reward-lo=-0.5 --reward-hi 1.5
    --rows-per-block 256 --blocks-per-shard 4
    --corrupt-blocks 0.25 --corrupt-seed 7)
run(${INSPECT} ${BAD} --diagnostics)
