// harvest_compact — compacts a text log into the HLOG binary columnar
// format, so every later run scans columns instead of re-parsing text.
//
// Compaction runs the exact scavenge validation the text read path uses
// (same spec, same quarantine classes); surviving decisions land in CRC-
// guarded column blocks with *raw* (pre-transform) values, and the footer
// persists the full ingestion ledger. Scavenging the output therefore
// reproduces the text path bit for bit — `--verify` proves it in-process.
//
// Usage:
//   harvest_compact <in.log> <out.hlog|out-dir> --event EV
//                   --context F1,F2,... --action FIELD --reward FIELD
//                   --actions N
//                   [--propensity FIELD] [--reward-lo X --reward-hi Y]
//                   [--stale-after S]
//                   [--rows-per-block N] [--blocks-per-shard N]
//                   [--partition-rows N]
//                   [--inject SPEC] [--inject-seed N]
//                   [--corrupt-blocks FRAC] [--corrupt-seed N]
//                   [--verify] [--threads N]
//   harvest_compact --merge <out.hlog> <in...>
//                   [--rows-per-block N] [--blocks-per-shard N] [--threads N]
//                   [--min-time T] [--max-time T] [--only-action A]
//                   [--min-propensity P] [--max-propensity P]
//   harvest_compact --corrupt <path> --corrupt-blocks FRAC
//                   [--corrupt-seed N] [--corrupt-shard FILE]
//   harvest_compact --make-demo <out.log> [--demo-records N] [--demo-seed N]
//
// --partition-rows writes a partitioned dataset directory (MANIFEST.json +
//   part files rotated every N rows) instead of one .hlog file.
// --merge folds many HLOG inputs (files and/or dataset directories, whose
//   members are expanded in manifest order) into one output file on the
//   work-stealing pool — bit-deterministic at any --threads, and the
//   quarantine ledger is conserved exactly (rows lost to CRC damage while
//   reading the inputs move into dropped_corrupt_block). The scan-predicate
//   flags (--min-time/--max-time/--only-action/--min-propensity/
//   --max-propensity) turn the merge into a selection: the inputs' zone
//   maps prune non-matching blocks without touching their bytes, decoded
//   blocks are row-filtered, and only matching rows are re-encoded — e.g.
//   --max-propensity 0.1 extracts the low-propensity exploration stratum
//   into its own corpus. Conservation then reads
//   input == kept + quarantined + filtered.
// --corrupt is the standalone chaos mode: flips one byte in the given
//   fraction of column blocks of a .hlog file, or — with --corrupt-shard —
//   of one named member of a dataset directory.
// --inject corrupts the *text* before compaction with the seed-
//   deterministic fault::FaultInjector (the compactor's quarantine ledger
//   then records what the faults cost). --corrupt-blocks flips one byte in
//   the given fraction of the *output's* column blocks, deterministically
//   per --corrupt-seed — the chaos fixture for the reader's CRC quarantine
//   path. The two compose; --verify refuses to run on a corrupted output.
// --make-demo writes the standard 3-action demo corpus (event=decide,
//   context=load, action=choice, reward=reward) used by the selftests, CI,
//   and the ingestion bench.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "harvest/harvest.h"
#include "store/compactor.h"
#include "store/dataset.h"
#include "util/flags.h"

namespace {

using namespace harvest;

int usage() {
  std::cerr
      << "usage: harvest_compact <in.log> <out.hlog|out-dir> --event EV\n"
         "                       --context F1,F2,... --action FIELD\n"
         "                       --reward FIELD --actions N\n"
         "                       [--propensity FIELD]\n"
         "                       [--reward-lo X --reward-hi Y]\n"
         "                       [--stale-after S]\n"
         "                       [--rows-per-block N] [--blocks-per-shard N]\n"
         "                       [--partition-rows N]\n"
         "                       [--inject SPEC] [--inject-seed N]\n"
         "                       [--corrupt-blocks FRAC] [--corrupt-seed N]\n"
         "                       [--verify] [--threads N]\n"
         "       harvest_compact --merge <out.hlog> <in...>\n"
         "                       [--rows-per-block N] [--blocks-per-shard N]\n"
         "                       [--threads N]\n"
         "                       [--min-time T] [--max-time T]\n"
         "                       [--only-action A]\n"
         "                       [--min-propensity P] [--max-propensity P]\n"
         "       harvest_compact --corrupt <path> --corrupt-blocks FRAC\n"
         "                       [--corrupt-seed N] [--corrupt-shard FILE]\n"
         "       harvest_compact --make-demo <out.log> [--demo-records N]\n"
         "                       [--demo-seed N]\n";
  return 2;
}

/// The demo corpus shared with harvest_inspect --selftest: a randomized
/// 3-action system whose reward depends on (load, action).
void write_demo_log(std::ostream& out, std::size_t records,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  logs::LogStore log;
  for (std::size_t i = 0; i < records; ++i) {
    const double load = rng.uniform(0.0, 10.0);
    const auto action = static_cast<core::ActionId>(rng.uniform_index(3));
    const double reward =
        0.5 + 0.04 * static_cast<double>(action) * (load - 5.0) +
        rng.normal(0.0, 0.05);
    logs::Record rec;
    rec.time = static_cast<double>(i) * 0.5;
    rec.event = "decide";
    rec.set("load", load);
    rec.set("choice", static_cast<std::int64_t>(action));
    rec.set("reward", reward);
    log.append(std::move(rec));
  }
  log.write_text(out);
}

/// Bitwise dataset comparison — the acceptance bar for text-vs-HLOG
/// identity (no epsilon: the store must preserve every bit).
bool identical(const core::ExplorationDataset& a,
               const core::ExplorationDataset& b) {
  if (a.size() != b.size() || a.num_actions() != b.num_actions()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::ExplorationPoint& pa = a[i];
    const core::ExplorationPoint& pb = b[i];
    if (pa.action != pb.action ||
        std::memcmp(&pa.reward, &pb.reward, sizeof(double)) != 0 ||
        std::memcmp(&pa.propensity, &pb.propensity, sizeof(double)) != 0 ||
        pa.context.size() != pb.context.size()) {
      return false;
    }
    for (std::size_t f = 0; f < pa.context.size(); ++f) {
      const double fa = pa.context[f];
      const double fb = pb.context[f];
      if (std::memcmp(&fa, &fb, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

std::string slurp_or_die(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_or_die(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
}

store::WriterOptions options_from(const util::Flags& flags) {
  store::WriterOptions options;
  options.rows_per_block = static_cast<std::size_t>(
      flags.get_int("rows-per-block", 4096));
  options.blocks_per_shard = static_cast<std::size_t>(
      flags.get_int("blocks-per-shard", 8));
  options.max_dict_entries = static_cast<std::size_t>(
      flags.get_int("max-dict-entries", 256));
  return options;
}

/// Builds the merge selection predicate from the scan-predicate flags
/// (trivial when none are given). Exits with usage() on inverted bounds.
store::ScanPredicate predicate_from(const util::Flags& flags) {
  store::ScanPredicate predicate;
  if (flags.has("min-time")) {
    predicate.min_time = flags.get_double("min-time", predicate.min_time);
  }
  if (flags.has("max-time")) {
    predicate.max_time = flags.get_double("max-time", predicate.max_time);
  }
  if (flags.has("only-action")) {
    predicate.action =
        static_cast<std::uint32_t>(flags.get_int("only-action", 0));
  }
  if (flags.has("min-propensity")) {
    predicate.min_propensity =
        flags.get_double("min-propensity", predicate.min_propensity);
  }
  if (flags.has("max-propensity")) {
    predicate.max_propensity =
        flags.get_double("max-propensity", predicate.max_propensity);
  }
  if (predicate.min_time > predicate.max_time ||
      predicate.min_propensity > predicate.max_propensity) {
    std::cerr << "empty scan predicate: min bound exceeds max bound\n";
    std::exit(2);
  }
  return predicate;
}

/// Merge mode: fold files and/or dataset directories into one HLOG file.
int run_merge(const util::Flags& flags) {
  // Flag parsing folds "--merge out.hlog" into the flag's value; the output
  // may land there or be the first positional.
  std::string out_path = flags.get_string("merge", "");
  std::vector<std::string> input_paths = flags.positional();
  if (out_path.empty() || out_path == "true") {
    if (input_paths.empty()) return usage();
    out_path = input_paths.front();
    input_paths.erase(input_paths.begin());
  }
  if (input_paths.empty()) return usage();

  // Open every input (expanding dataset directories in manifest order);
  // the containers keep the readers alive across the merge.
  std::vector<std::unique_ptr<store::Reader>> files;
  std::vector<std::unique_ptr<store::Dataset>> datasets;
  std::vector<const store::Reader*> inputs;
  for (const std::string& path : input_paths) {
    try {
      if (store::is_dataset_dir(path)) {
        datasets.push_back(
            std::make_unique<store::Dataset>(store::Dataset::open(path)));
        for (const store::Reader& reader : datasets.back()->readers()) {
          inputs.push_back(&reader);
        }
      } else {
        files.push_back(
            std::make_unique<store::Reader>(store::Reader::open(path)));
        inputs.push_back(files.back().get());
      }
    } catch (const std::exception& e) {
      std::cerr << "cannot open input: " << e.what() << "\n";
      return 1;
    }
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  const store::ScanPredicate predicate = predicate_from(flags);
  const store::MergeReport report = [&] {
    try {
      return store::merge_readers(inputs, out, options_from(flags),
                                  par::default_pool(), predicate);
    } catch (const std::exception& e) {
      std::cerr << "merge failed: " << e.what() << "\n";
      std::exit(1);
    }
  }();
  out.close();

  std::cout << "merged " << inputs.size() << " inputs ("
            << report.input_totals.rows << " ledgered rows) -> " << out_path
            << ": " << report.rows_kept << " rows in "
            << report.output_shards << " shards / " << report.output_blocks
            << " blocks";
  if (report.rows_quarantined > 0) {
    std::cout << "; " << report.rows_quarantined
              << " rows quarantined at merge time (now ledgered as "
                 "corrupt_block)";
  }
  std::cout << "\n";
  if (!predicate.trivial()) {
    std::cout << "selection: predicate [" << predicate.describe()
              << "] filtered " << report.rows_filtered << " rows ("
              << report.blocks_pruned << " blocks pruned via zone maps)\n";
  }
  std::cout << "conservation: input kept+quarantined "
            << report.input_totals.rows << " == output kept "
            << report.output.rows << " + newly quarantined "
            << report.rows_quarantined
            << (predicate.trivial()
                    ? std::string()
                    : " + filtered " + std::to_string(report.rows_filtered))
            << ": " << (report.conserved() ? "OK" : "VIOLATED") << "\n";
  return report.conserved() ? 0 : 1;
}

/// Standalone chaos mode: corrupt blocks of a .hlog file or of one named
/// member of a dataset directory.
int run_corrupt(const util::Flags& flags) {
  std::string target = flags.get_string("corrupt", "");
  if (target.empty() || target == "true") {
    if (flags.positional().empty()) return usage();
    target = flags.positional().front();
  }
  const double fraction = flags.get_double("corrupt-blocks", 0.0);
  if (fraction <= 0) {
    std::cerr << "--corrupt needs --corrupt-blocks FRAC > 0\n";
    return 2;
  }
  if (store::is_dataset_dir(target)) {
    const std::string shard = flags.get_string("corrupt-shard", "");
    if (shard.empty()) {
      std::cerr << target << " is a dataset; pick a member with "
                   "--corrupt-shard FILE:\n";
      try {
        const store::Dataset dataset = store::Dataset::open(target);
        for (const auto& entry : dataset.manifest().shards) {
          std::cerr << "  " << entry.file << " (" << entry.counts.rows
                    << " rows)\n";
        }
      } catch (const std::exception& e) {
        std::cerr << "  (unreadable: " << e.what() << ")\n";
      }
      return 2;
    }
    target = (std::filesystem::path(target) / shard).string();
  }
  std::string bytes = slurp_or_die(target);
  if (!store::is_hlog(bytes)) {
    std::cerr << target << " is not HLOG\n";
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("corrupt-seed", 1));
  const auto report = store::corrupt_blocks(bytes, seed, fraction);
  write_or_die(target, bytes);
  std::cout << "corrupted " << report.blocks_corrupted << " of "
            << report.blocks_total << " blocks (" << report.rows_affected
            << " rows, seed " << seed << ") in " << target << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  par::set_default_threads(
      static_cast<std::size_t>(flags.get_int("threads", 1)));

  if (flags.has("make-demo")) {
    // Flag parsing folds "--make-demo out.log" into the flag's value;
    // accept the path there or as a positional.
    std::string demo_path = flags.get_string("make-demo", "");
    if (demo_path.empty() || demo_path == "true") {
      if (flags.positional().empty()) return usage();
      demo_path = flags.positional().front();
    }
    std::ofstream out(demo_path);
    if (!out) {
      std::cerr << "cannot write " << demo_path << "\n";
      return 1;
    }
    const auto records = static_cast<std::size_t>(
        flags.get_int("demo-records", 20000));
    write_demo_log(out, records,
                   static_cast<std::uint64_t>(flags.get_int("demo-seed", 123)));
    std::cout << "demo corpus: " << records << " records -> " << demo_path
              << "\n";
    return 0;
  }

  if (flags.has("merge")) return run_merge(flags);
  if (flags.has("corrupt")) return run_corrupt(flags);

  if (flags.positional().size() < 2 || !flags.has("event") ||
      !flags.has("context") || !flags.has("action") || !flags.has("reward") ||
      !flags.has("actions")) {
    return usage();
  }
  const std::string in_path = flags.positional()[0];
  const std::string out_path = flags.positional()[1];

  logs::ScavengeSpec spec;
  spec.decision_event = flags.get_string("event", "");
  for (const auto piece : util::split(flags.get_string("context", ""), ',')) {
    spec.context_fields.emplace_back(util::trim(piece));
  }
  spec.action_field = flags.get_string("action", "");
  spec.reward_field = flags.get_string("reward", "");
  spec.propensity_field = flags.get_string("propensity", "");
  spec.num_actions = static_cast<std::size_t>(flags.get_int("actions", 0));
  spec.reward_range = {flags.get_double("reward-lo", 0.0),
                       flags.get_double("reward-hi", 1.0)};
  spec.stale_after_seconds = flags.get_double("stale-after", 0.0);
  // HLOG stores raw values; consumers apply their own transform at scan
  // time, exactly as they would over text.
  spec.reward_transform = [](double r) { return r; };

  std::string text;
  {
    std::ifstream file(in_path, std::ios::binary);
    if (!file) {
      std::cerr << "cannot open " << in_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  if (store::is_hlog(text)) {
    std::cerr << in_path << " is already HLOG (use --merge to re-pack)\n";
    return 1;
  }

  // Optional pre-compaction chaos: the same deterministic text faults the
  // hardened read path is tested under.
  if (flags.has("inject") && !flags.get_string("inject", "").empty()) {
    try {
      const fault::FaultInjector injector(
          static_cast<std::uint64_t>(flags.get_int("inject-seed", 1)),
          fault::parse_fault_specs(flags.get_string("inject", "")));
      auto [corrupted, inj] = injector.inject_text(text);
      text = std::move(corrupted);
      std::cout << "injected text faults (seed "
                << flags.get_int("inject-seed", 1) << "): " << inj.lines_in
                << " -> " << inj.lines_out << " lines, "
                << inj.total_mutations() << " mutations\n";
    } catch (const std::exception& e) {
      std::cerr << "bad --inject spec: " << e.what() << "\n";
      return 2;
    }
  }

  obs::ScopedSpan root("compact.run");
  std::istringstream stream(text);
  const auto [log, read_stats] = logs::LogStore::read_text_chunked(stream);
  std::cout << "parsed " << log.size() << " records ("
            << read_stats.skipped() << " malformed lines skipped)\n";

  store::Schema schema;
  schema.decision_event = spec.decision_event;
  schema.context_fields = spec.context_fields;
  schema.action_field = spec.action_field;
  schema.reward_field = spec.reward_field;
  schema.propensity_field = spec.propensity_field;
  schema.stale_after_seconds = spec.stale_after_seconds;
  schema.reward_lo = spec.reward_range.lo;
  schema.reward_hi = spec.reward_range.hi;
  schema.num_actions = static_cast<std::uint32_t>(spec.num_actions);

  const store::WriterOptions options = options_from(flags);
  const auto partition_rows =
      static_cast<std::uint64_t>(flags.get_int("partition-rows", 0));

  logs::ScavengeResult scavenged{
      core::ExplorationDataset(spec.num_actions, spec.reward_range)};
  {
    obs::ScopedSpan span("compact.write");
    logs::ScavengeSpec compact_spec = spec;
    const auto run_scavenge = [&](auto& writer) -> bool {
      compact_spec.on_harvest = [&](const logs::Record& rec,
                                    const core::ExplorationPoint& point) {
        writer.add(rec.time, point.context.values(), point.action,
                   point.reward, point.propensity);
      };
      try {
        scavenged = logs::scavenge(log, compact_spec);
      } catch (const std::exception& e) {
        std::cerr << "scavenge failed: " << e.what() << "\n";
        return false;
      }
      store::Counts counts;
      counts.records_seen = scavenged.records_seen;
      counts.decisions_seen = scavenged.decisions_seen;
      counts.dropped_missing_fields = scavenged.dropped_missing_fields;
      counts.dropped_bad_action = scavenged.dropped_bad_action;
      counts.dropped_bad_propensity = scavenged.dropped_bad_propensity;
      counts.dropped_stale_timestamp = scavenged.dropped_stale_timestamp;
      writer.set_counts(counts);
      writer.finish();
      return true;
    };
    if (partition_rows > 0) {
      try {
        store::DatasetWriter writer(out_path, schema, options, partition_rows);
        if (!run_scavenge(writer)) return 1;
      } catch (const std::exception& e) {
        std::cerr << "cannot write dataset " << out_path << ": " << e.what()
                  << "\n";
        return 1;
      }
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
      }
      store::Writer writer(out, schema, options);
      if (!run_scavenge(writer)) return 1;
    }
  }

  // Optional post-write chaos: deterministic block corruption, the fixture
  // for the reader's CRC quarantine path (single-file output; datasets use
  // the standalone --corrupt mode with --corrupt-shard).
  const double corrupt_fraction = flags.get_double("corrupt-blocks", 0.0);
  if (corrupt_fraction > 0) {
    if (partition_rows > 0) {
      std::cerr << "--corrupt-blocks does not apply to --partition-rows "
                   "output; use --corrupt <dir> --corrupt-shard FILE\n";
      return 2;
    }
    std::string bytes = slurp_or_die(out_path);
    const auto report = store::corrupt_blocks(
        bytes, static_cast<std::uint64_t>(flags.get_int("corrupt-seed", 1)),
        corrupt_fraction);
    write_or_die(out_path, bytes);
    std::cout << "corrupted " << report.blocks_corrupted << " of "
              << report.blocks_total << " blocks (" << report.rows_affected
              << " rows, seed " << flags.get_int("corrupt-seed", 1) << ")\n";
  }

  // Re-open what was written and summarize it.
  std::unique_ptr<store::Reader> reader;
  std::unique_ptr<store::Dataset> dataset;
  std::uint64_t out_rows = 0;
  std::size_t out_shards = 0;
  std::size_t out_blocks = 0;
  std::uint64_t out_bytes = 0;
  try {
    if (partition_rows > 0) {
      dataset =
          std::make_unique<store::Dataset>(store::Dataset::open(out_path));
      out_rows = dataset->rows();
      for (const store::Reader& r : dataset->readers()) {
        out_shards += r.shards().size();
      }
      out_blocks = dataset->num_blocks();
      out_bytes = dataset->file_bytes();
    } else {
      reader = std::make_unique<store::Reader>(store::Reader::open(out_path));
      out_rows = reader->rows();
      out_shards = reader->shards().size();
      out_blocks = reader->num_blocks();
      out_bytes = reader->file_bytes();
    }
  } catch (const std::exception& e) {
    std::cerr << "cannot re-open output: " << e.what() << "\n";
    return 1;
  }
  std::cout << "compacted " << out_rows << " of " << scavenged.decisions_seen
            << " decisions (" << scavenged.total_dropped()
            << " quarantined) into ";
  if (dataset) {
    std::cout << dataset->manifest().shards.size() << " files / ";
  }
  std::cout << out_shards << " shards / " << out_blocks << " blocks, "
            << out_bytes << " bytes ("
            << util::format_double(
                   text.empty() ? 0.0
                                : static_cast<double>(out_bytes) /
                                      static_cast<double>(text.size()),
                   3)
            << "x of text)\n";

  if (flags.get_bool("verify", false)) {
    if (corrupt_fraction > 0) {
      std::cerr << "--verify cannot follow --corrupt-blocks (the output is "
                   "deliberately damaged)\n";
      return 2;
    }
    obs::ScopedSpan span("compact.verify");
    const logs::ScavengeResult from_text = logs::scavenge(log, spec);
    const logs::ScavengeResult from_hlog =
        dataset ? logs::scavenge(*dataset, spec)
                : logs::scavenge(*reader, spec);
    const bool counters_match =
        from_text.records_seen == from_hlog.records_seen &&
        from_text.decisions_seen == from_hlog.decisions_seen &&
        from_text.dropped_missing_fields == from_hlog.dropped_missing_fields &&
        from_text.dropped_bad_action == from_hlog.dropped_bad_action &&
        from_text.dropped_bad_propensity ==
            from_hlog.dropped_bad_propensity &&
        from_text.dropped_stale_timestamp ==
            from_hlog.dropped_stale_timestamp &&
        from_hlog.dropped_corrupt_block == 0;
    if (!counters_match || !identical(from_text.data, from_hlog.data)) {
      std::cerr << "VERIFY FAILED: HLOG scavenge differs from text scavenge\n";
      return 1;
    }
    std::cout << "verify: text and HLOG scavenge are bit-identical ("
              << from_text.data.size() << " tuples, "
              << flags.get_int("threads", 1) << " threads)\n";
  }
  return 0;
}
