// harvest_design: close the design loop — harvest, plan, serve under the
// plan, re-harvest, and show the measured OPE variance shrink.
//
// The paper harvests whatever randomness production systems already emit;
// this tool runs the natural next step: *choose* the randomness. From a
// harvest it fits a reward model, asks the design:: planner for the
// per-stratum exploration distribution that minimizes the worst-case
// off-policy-evaluation variance across the candidate policies we care
// about (subject to a propensity floor and a regret budget), deploys that
// LoggingPlan as a planned PolicySnapshot on the decision service, and
// compares the OPE error bars measured on the plan's own logs against an
// eps-greedy control arm serving the identical context stream.
//
// Modes:
//   --harvest DIR [--out plan.json]
//       Offline: scavenge an existing HLOG dataset directory, plan, write
//       the versioned plan JSON, print the planner report.
//   --selfloop [--out plan.json] [--bench BENCH.json] [--check]
//       In-process closed loop: harvest (uniform logging) -> plan -> serve
//       the planned snapshot and the eps-greedy baseline on the same
//       contexts -> re-harvest both arms -> measure IPS/DR error bars per
//       candidate. --check exits 1 unless the planner beat its baseline
//       objective AND the measured worst-case IPS variance under the plan
//       is no worse than under eps-greedy.
//
// Flags (selfloop): --decisions N (per arm; default 20000), --threads N
// (default 2), --actions K (3), --dim D (4), --epsilon E (0.2), --floor F
// (0.03), --iterations I (64), --seed S (42), --workdir DIR (design_loop).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/estimators/direct.h"
#include "core/estimators/ips.h"
#include "core/policies/basic.h"
#include "core/policies/greedy.h"
#include "core/reward_model.h"
#include "design/plan.h"
#include "design/planner.h"
#include "logs/scavenger.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "store/dataset.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/rng.h"

namespace {

using namespace harvest;

/// Same simulated environment as harvest_serve: action a in context x pays
/// clamp01(w_a · [1, x]) plus small uniform noise.
struct Environment {
  std::vector<std::vector<double>> true_weights;  // [action][dim+1]

  double reward(std::span<const double> x, std::uint32_t action,
                util::Rng& rng) const {
    const auto& w = true_weights[action];
    double r = w[0];
    for (std::size_t i = 0; i < x.size(); ++i) r += w[1 + i] * x[i];
    r += rng.uniform(-0.05, 0.05);
    return std::clamp(r, 0.0, 1.0);
  }
};

store::Schema make_schema(std::size_t num_actions, std::size_t dim) {
  store::Schema schema;
  schema.decision_event = "serve";
  for (std::size_t i = 0; i < dim; ++i) {
    schema.context_fields.push_back("x" + std::to_string(i));
  }
  schema.action_field = "action";
  schema.reward_field = "reward";
  schema.propensity_field = "propensity";
  schema.num_actions = static_cast<std::uint32_t>(num_actions);
  schema.reward_lo = 0;
  schema.reward_hi = 1;
  return schema;
}

logs::ScavengeSpec make_spec(const store::Schema& schema) {
  logs::ScavengeSpec spec;
  spec.decision_event = schema.decision_event;
  spec.context_fields = schema.context_fields;
  spec.action_field = schema.action_field;
  spec.reward_field = schema.reward_field;
  spec.propensity_field = schema.propensity_field;
  spec.reward_transform = [](double r) { return r; };
  spec.num_actions = schema.num_actions;
  spec.reward_range = {schema.reward_lo, schema.reward_hi};
  return spec;
}

/// Importance-weighted ridge fit on a harvest — the same fit the serve
/// trainer publishes, exposed here so the planner and the candidate set are
/// built from exactly what the serving layer would deploy.
std::shared_ptr<core::RidgeRewardModel> fit_model(
    const core::ExplorationDataset& data, std::size_t dim) {
  auto model = std::make_shared<core::RidgeRewardModel>(data.num_actions(),
                                                        dim, 1.0);
  for (const auto& pt : data.points()) {
    model->observe(pt.context, pt.action, pt.reward, 1.0 / pt.propensity);
  }
  model->fit();
  return model;
}

std::vector<double> flatten_weights(const core::RidgeRewardModel& model) {
  std::vector<double> flat;
  for (std::size_t a = 0; a < model.num_actions(); ++a) {
    const auto& row = model.weights(static_cast<core::ActionId>(a));
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

/// The evaluation suite the plan must protect: the trained greedy policy
/// (what we would deploy next) plus every "always play a" probe (the
/// classic A/B questions). Constant policies are what stress a logging
/// plan — each needs propensity mass on its action in every stratum.
std::vector<core::PolicyPtr> make_candidates(
    const std::shared_ptr<core::RidgeRewardModel>& model) {
  std::vector<core::PolicyPtr> candidates;
  candidates.push_back(
      std::make_shared<core::GreedyPolicy>(model, "trained-greedy"));
  for (std::size_t a = 0; a < model->num_actions(); ++a) {
    candidates.push_back(std::make_shared<core::ConstantPolicy>(
        model->num_actions(), static_cast<core::ActionId>(a)));
  }
  return candidates;
}

/// Serves `decisions` paired decisions from `snapshot` and returns the
/// scavenged harvest. Context and environment-noise streams depend only on
/// (seed, thread), NOT on the snapshot — so the eps-greedy and planned arms
/// see the identical context sequence and differ only in how they
/// randomize (a paired comparison).
core::ExplorationDataset serve_arm(
    std::unique_ptr<const serve::PolicySnapshot> snapshot,
    const std::string& dir, std::size_t decisions, std::size_t threads,
    std::size_t num_actions, std::size_t dim, std::uint64_t seed,
    const Environment& env, const store::Schema& schema,
    const logs::ScavengeSpec& spec, double* mean_reward) {
  const std::size_t per_thread = (decisions + threads - 1) / threads;
  std::size_t ring = 2;
  while (ring < per_thread + 1) ring <<= 1;
  serve::DecisionService service(
      {.num_actions = num_actions, .dim = dim, .log_capacity = ring,
       .seed = seed},
      std::move(snapshot));
  std::vector<serve::Decider*> deciders;
  for (std::size_t t = 0; t < threads; ++t) {
    deciders.push_back(&service.add_decider());
  }
  std::vector<double> sums(threads, 0.0);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng ctx_rng(util::derive_stream_seed(seed, 2 * t));
      util::Rng env_noise(util::derive_stream_seed(seed, 2 * t + 1));
      double ctx[serve::kMaxContextDim] = {};
      const std::span<const double> span(ctx, dim);
      for (std::size_t i = 0; i < per_thread; ++i) {
        for (std::size_t d = 0; d < dim; ++d) ctx[d] = ctx_rng.uniform();
        const serve::Decision dec = deciders[t]->decide(span);
        const double r = env.reward(span, dec.action, env_noise);
        deciders[t]->log_reward(r);
        sums[t] += r;
      }
    });
  }
  for (auto& w : workers) w.join();

  std::error_code stale_ec;
  std::filesystem::remove_all(dir, stale_ec);
  store::DatasetWriter writer(dir, schema);
  service.drain([&writer](const serve::DecisionRecord& rec) {
    if (std::isnan(rec.reward)) return;  // un-rewarded flushes
    writer.add(rec.time, std::span<const double>(rec.context, rec.dim),
               rec.action, rec.reward, rec.propensity);
  });
  writer.finish();
  service.reclaim_all();

  double mean = 0;
  for (double s : sums) mean += s;
  if (mean_reward != nullptr) {
    *mean_reward = mean / static_cast<double>(per_thread * threads);
  }
  const store::Dataset dataset = store::Dataset::open(dir);
  return logs::scavenge(dataset, spec).data;
}

struct MeasuredArm {
  std::vector<double> ips_stderr;  // per candidate
  std::vector<double> dr_stderr;
  std::vector<double> ips_value;
  double worst_ips_var = 0;
  double mean_reward = 0;
};

MeasuredArm measure(const core::ExplorationDataset& data,
                    const std::vector<core::PolicyPtr>& candidates,
                    const core::RewardModelPtr& model) {
  const core::IpsEstimator ips;
  const core::DoublyRobustEstimator dr(model);
  MeasuredArm arm;
  for (const auto& cand : candidates) {
    const core::Estimate e_ips = ips.evaluate(data, *cand, 0.05);
    const core::Estimate e_dr = dr.evaluate(data, *cand, 0.05);
    arm.ips_stderr.push_back(e_ips.stderr_value);
    arm.dr_stderr.push_back(e_dr.stderr_value);
    arm.ips_value.push_back(e_ips.value);
    arm.worst_ips_var = std::max(arm.worst_ips_var,
                                 e_ips.stderr_value * e_ips.stderr_value);
  }
  return arm;
}

void print_report(const design::PlannerReport& report) {
  std::printf("planner: strata=%zu floor=%.4f budget=%.6f iterations=%zu%s\n",
              report.plan.num_strata(), report.plan.propensity_floor,
              report.regret_budget, report.iterations_run,
              report.fell_back_to_baseline ? " (fell back to eps-greedy)"
                                           : "");
  std::printf("objective (worst-case variance proxy): planned=%.6g "
              "baseline=%.6g (x%.3f)\n",
              report.planned_objective, report.baseline_objective,
              report.planned_objective > 0
                  ? report.baseline_objective / report.planned_objective
                  : 0.0);
  std::printf("model regret/decision: planned=%.6f baseline=%.6f "
              "(budget %.6f)\n",
              report.planned_regret, report.baseline_regret,
              report.regret_budget);
  for (const auto& c : report.candidates) {
    std::printf("  candidate %-16s var planned=%.6g baseline=%.6g\n",
                c.name.c_str(), c.planned, c.baseline);
  }
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  out << body;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "harvest_design: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::string harvest_dir = flags.get_string("harvest", "");
  const bool selfloop = flags.get_bool("selfloop", false);
  const std::string out_path = flags.get_string("out", "");
  const std::string bench_path = flags.get_string("bench", "");
  const bool check = flags.get_bool("check", false);
  const auto decisions =
      static_cast<std::size_t>(flags.get_int("decisions", 20000));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 2));
  const auto num_actions =
      static_cast<std::size_t>(flags.get_int("actions", 3));
  const auto dim = static_cast<std::size_t>(flags.get_int("dim", 4));
  const double epsilon = flags.get_double("epsilon", 0.2);
  const double floor = flags.get_double("floor", 0.03);
  const auto iterations =
      static_cast<std::size_t>(flags.get_int("iterations", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string workdir = flags.get_string("workdir", "design_loop");

  if (harvest_dir.empty() == !selfloop) {
    std::fprintf(stderr,
                 "harvest_design: pass exactly one of --harvest DIR or "
                 "--selfloop\n");
    return 2;
  }
  if (threads == 0 || decisions == 0 || num_actions == 0 ||
      dim > serve::kMaxContextDim) {
    std::fprintf(stderr, "harvest_design: bad geometry\n");
    return 2;
  }

  design::PlannerConfig planner_config;
  planner_config.propensity_floor = floor;
  planner_config.baseline_epsilon = epsilon;
  planner_config.iterations = iterations;

  // ---- offline mode: plan from an existing HLOG harvest ------------------
  if (!harvest_dir.empty()) {
    const store::Schema schema = make_schema(num_actions, dim);
    const logs::ScavengeSpec spec = make_spec(schema);
    const store::Dataset dataset = store::Dataset::open(harvest_dir);
    const core::ExplorationDataset data = logs::scavenge(dataset, spec).data;
    if (data.empty()) {
      std::fprintf(stderr, "harvest_design: scavenge found no tuples\n");
      return 1;
    }
    std::printf("harvested %zu tuples from %s\n", data.size(),
                harvest_dir.c_str());
    const auto model = fit_model(data, dim);
    const design::PlannerReport report =
        design::plan_logging(data, make_candidates(model), *model,
                             flatten_weights(*model), dim, planner_config);
    print_report(report);
    if (!out_path.empty() && !write_file(out_path, report.plan.to_json())) {
      return 1;
    }
    if (!out_path.empty()) {
      std::printf("plan written to %s\n", out_path.c_str());
    }
    return 0;
  }

  // ---- selfloop: harvest -> plan -> serve both arms -> re-measure --------
  std::filesystem::create_directories(workdir);
  const store::Schema schema = make_schema(num_actions, dim);
  const logs::ScavengeSpec spec = make_spec(schema);

  util::Rng env_rng(util::derive_stream_seed(seed, 1000));
  Environment env;
  env.true_weights.assign(num_actions, std::vector<double>(dim + 1));
  for (auto& w : env.true_weights) {
    for (auto& v : w) v = env_rng.uniform(-0.4, 0.4);
    w[0] += 0.5;
  }

  // Phase 1: harvest under uniform logging (the pre-design logging policy).
  double uniform_mean = 0;
  const core::ExplorationDataset harvest0 = serve_arm(
      serve::PolicySnapshot::uniform(1, num_actions, dim),
      workdir + "/harvest0", decisions, threads, num_actions, dim,
      seed ^ 0x48415256u /* "HARV" */, env, schema, spec, &uniform_mean);
  if (harvest0.size() < 100) {
    std::fprintf(stderr, "harvest_design: harvest too small (%zu tuples)\n",
                 harvest0.size());
    return 1;
  }
  std::printf("phase 1: harvested %zu tuples (uniform logging, mean "
              "reward %.4f)\n",
              harvest0.size(), uniform_mean);

  // Phase 2: fit, choose candidates, plan.
  const auto model = fit_model(harvest0, dim);
  const std::vector<core::PolicyPtr> candidates = make_candidates(model);
  std::vector<double> reference = flatten_weights(*model);
  const design::PlannerReport report = design::plan_logging(
      harvest0, candidates, *model, reference, dim, planner_config);
  print_report(report);
  const std::string plan_path =
      out_path.empty() ? workdir + "/plan.json" : out_path;
  if (!write_file(plan_path, report.plan.to_json())) return 1;
  std::printf("phase 2: plan written to %s\n", plan_path.c_str());

  // Phase 3: serve both arms on the identical context stream. Executing the
  // plan goes through the real deployment path: JSON -> LoggingPlan ->
  // planned PolicySnapshot on a DecisionService.
  const design::LoggingPlan loaded = design::LoggingPlan::parse_json(
      report.plan.to_json(), plan_path);
  const std::uint64_t arm_seed = seed ^ 0x504C414Eu;  // "PLAN"
  double base_mean = 0, plan_mean = 0;
  const core::ExplorationDataset harvest_base = serve_arm(
      serve::PolicySnapshot::from_model(2, *model, dim, epsilon),
      workdir + "/arm_epsgreedy", decisions, threads, num_actions, dim,
      arm_seed, env, schema, spec, &base_mean);
  const core::ExplorationDataset harvest_plan = serve_arm(
      serve::PolicySnapshot::planned(3, num_actions, dim, loaded.reference_weights,
                                     loaded.distributions),
      workdir + "/arm_planned", decisions, threads, num_actions, dim,
      arm_seed, env, schema, spec, &plan_mean);
  std::printf("phase 3: served %zu decisions per arm (mean reward: "
              "eps-greedy %.4f, planned %.4f)\n",
              decisions, base_mean, plan_mean);

  // Phase 4: measure the OPE error bars each arm's logs support.
  const core::RewardModelPtr model_ptr = model;
  const MeasuredArm base = measure(harvest_base, candidates, model_ptr);
  const MeasuredArm planned = measure(harvest_plan, candidates, model_ptr);
  std::printf("phase 4: measured OPE error bars (%zu candidates)\n",
              candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::printf("  %-16s ips stderr: eps-greedy %.5f planned %.5f | dr "
                "stderr: eps-greedy %.5f planned %.5f\n",
                candidates[c]->name().c_str(), base.ips_stderr[c],
                planned.ips_stderr[c], base.dr_stderr[c],
                planned.dr_stderr[c]);
  }
  const double shrink =
      planned.worst_ips_var > 0 ? base.worst_ips_var / planned.worst_ips_var
                                : 0.0;
  std::printf("worst-case measured IPS variance: eps-greedy %.6g planned "
              "%.6g (shrink x%.3f)\n",
              base.worst_ips_var, planned.worst_ips_var, shrink);

  if (!bench_path.empty()) {
    std::string body = "{\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"decisions_per_arm\": %zu,\n  \"threads\": %zu,\n"
                  "  \"actions\": %zu,\n  \"dim\": %zu,\n"
                  "  \"epsilon\": %g,\n  \"floor\": %g,\n  \"seed\": %llu,\n",
                  decisions, threads, num_actions, dim, epsilon, floor,
                  static_cast<unsigned long long>(seed));
    body += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"planned_objective\": %.6g,\n"
                  "  \"baseline_objective\": %.6g,\n"
                  "  \"planned_regret\": %.6g,\n"
                  "  \"baseline_regret\": %.6g,\n"
                  "  \"fell_back_to_baseline\": %s,\n",
                  report.planned_objective, report.baseline_objective,
                  report.planned_regret, report.baseline_regret,
                  report.fell_back_to_baseline ? "true" : "false");
    body += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"mean_reward_epsgreedy\": %.6f,\n"
                  "  \"mean_reward_planned\": %.6f,\n",
                  base_mean, plan_mean);
    body += buf;
    body += "  \"candidates\": [\n";
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"ips_stderr_epsgreedy\": %.6g, "
                    "\"ips_stderr_planned\": %.6g, \"dr_stderr_epsgreedy\": "
                    "%.6g, \"dr_stderr_planned\": %.6g}%s\n",
                    candidates[c]->name().c_str(), base.ips_stderr[c],
                    planned.ips_stderr[c], base.dr_stderr[c],
                    planned.dr_stderr[c],
                    c + 1 < candidates.size() ? "," : "");
      body += buf;
    }
    body += "  ],\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"worst_ips_var_epsgreedy\": %.6g,\n"
                  "  \"worst_ips_var_planned\": %.6g,\n"
                  "  \"variance_shrink\": %.4f\n}\n",
                  base.worst_ips_var, planned.worst_ips_var, shrink);
    body += buf;
    if (!write_file(bench_path, body)) return 1;
    std::printf("bench written to %s\n", bench_path.c_str());
  }

  if (check) {
    if (report.planned_objective > report.baseline_objective) {
      std::fprintf(stderr,
                   "harvest_design: planner objective worse than baseline\n");
      return 1;
    }
    if (planned.worst_ips_var > base.worst_ips_var) {
      std::fprintf(stderr,
                   "harvest_design: measured planned variance (%.6g) worse "
                   "than eps-greedy (%.6g)\n",
                   planned.worst_ips_var, base.worst_ips_var);
      return 1;
    }
    std::printf("check ok: planned logging never worse, measured shrink "
                "x%.3f\n", shrink);
  }
  return 0;
}
