// harvest_inspect — command-line harvesting of a log file (text or HLOG).
//
// Point it at any log in the key=value record format — a binary HLOG
// corpus produced by harvest_compact, or a partitioned dataset directory
// (MANIFEST.json + part files) — and it will:
//   1. parse the file (reporting torn/malformed lines), or mmap-scan the
//      HLOG blocks (reporting CRC-quarantined ones),
//   2. scavenge ⟨context, action, reward⟩ tuples per your field spec,
//   3. infer propensities from the action frequencies (step 2),
//   4. report the harvested exploration quality: min propensity, Eq. 1
//      optimization potential, per-action estimates, and the offline value
//      of a CB policy trained on half the data and IPS-evaluated on the
//      other half.
//
// Usage:
//   harvest_inspect <logfile|dataset-dir> --event decide --context x,y
//                   --action a --reward r --actions 3
//                   [--reward-lo 0 --reward-hi 1]
//                   [--format auto|text|hlog] [--diagnostics]
//                   [--min-time T] [--max-time T] [--only-action A]
//                   [--trace spans.jsonl] [--inject SPEC] [--inject-seed N]
//   harvest_inspect --selftest        # generate and process a demo log
//
// --format selects the input decoding; `auto` (the default) sniffs the HLOG
//   magic bytes of files and recognizes dataset directories by their
//   MANIFEST.json. HLOG corpora are self-describing, so the field-spec flags
//   (--event/--context/...) may be omitted — they default to the schema the
//   corpus was compacted under. --inject is text-only (corrupt HLOG blocks
//   at compaction time with harvest_compact --corrupt-blocks instead).
//
// --min-time/--max-time/--only-action/--min-propensity/--max-propensity
//   push a scan predicate down to the zone-mapped binary scan: blocks whose
//   zone maps cannot match are skipped without touching their bytes, and a
//   pruning summary (blocks pruned vs scanned) is printed. Binary inputs
//   only — text logs have no zone maps. The propensity bounds select
//   exploration strata (e.g. --max-propensity 0.1 keeps only the rare
//   low-propensity exploration draws).
//
// --diagnostics prints the OPE-health panel: effective sample size,
//   min propensity, importance-weight tails, and the logging-vs-evaluation
//   context-drift statistic (the A1 stationarity check).
// --trace FILE writes the flight-recorder trace covering every pipeline
//   stage that ran. --trace-format picks the encoding: `jsonl` (default;
//   one span object per line with parent/child nesting, byte-compatible
//   with pre-recorder dumps on clean runs) or `chrome` (Chrome Trace Event
//   JSON for chrome://tracing / Perfetto, including worker-thread and
//   store/pool events).
// --inject SPEC corrupts the log text before ingestion with the
//   seed-deterministic fault injector (e.g. "torn=0.05,dup=0.02,bad-p=0.01";
//   see src/fault/fault_spec.h for the taxonomy) — a chaos rehearsal of the
//   hardened read path. --inject-seed makes the corrupted corpus
//   reproducible (default 1).
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "harvest/harvest.h"
#include "util/flags.h"

namespace {

using namespace harvest;

int usage() {
  std::cerr
      << "usage: harvest_inspect <logfile|dataset-dir> --event EV\n"
         "                       --context F1,F2,... --action FIELD\n"
         "                       --reward FIELD --actions N\n"
         "                       [--reward-lo X] [--reward-hi Y]\n"
         "                       [--format auto|text|hlog]\n"
         "                       [--min-time T] [--max-time T]\n"
         "                       [--only-action A]\n"
         "                       [--min-propensity P] [--max-propensity P]\n"
         "                       [--diagnostics] [--trace FILE]\n"
         "                       [--trace-format jsonl|chrome]\n"
         "                       [--inject SPEC] [--inject-seed N]\n"
         "       harvest_inspect --selftest [--diagnostics] [--trace FILE]\n"
         "(HLOG inputs are self-describing: the field-spec flags default\n"
         " to the schema stored in the corpus)\n";
  return 2;
}

/// Writes a demo log (a randomized 3-action system) to a stringstream.
std::string make_demo_log() {
  util::Rng rng(123);
  logs::LogStore log;
  for (int i = 0; i < 4000; ++i) {
    const double load = rng.uniform(0.0, 10.0);
    const auto action = static_cast<core::ActionId>(rng.uniform_index(3));
    const double reward =
        0.5 + 0.04 * static_cast<double>(action) * (load - 5.0) +
        rng.normal(0.0, 0.05);
    logs::Record rec;
    rec.time = i * 0.5;
    rec.event = "decide";
    rec.set("load", load);
    rec.set("choice", static_cast<std::int64_t>(action));
    rec.set("reward", reward);
    log.append(std::move(rec));
  }
  std::ostringstream out;
  log.write_text(out);
  return out.str();
}

std::string ci_string(const core::Estimate& est) {
  return "[" + util::format_double(est.normal_ci.lo, 4) + ", " +
         util::format_double(est.normal_ci.hi, 4) + "]";
}

/// The --diagnostics panel: estimator-internal health of the harvested log.
void print_diagnostics(const pipeline::HarvestReport& report) {
  const obs::OpeDiagnostics& d = report.logging_diagnostics;
  std::cout << "\n== OPE-health diagnostics ==\n";
  std::cout << "effective sample size (ESS): "
            << util::format_double(d.ess, 1) << " ("
            << util::format_double(100 * d.ess_fraction, 1) << "% of n="
            << d.n << ")\n";
  std::cout << "min propensity:              "
            << util::format_double(d.min_propensity, 4) << "\n";
  std::cout << "max importance weight:       "
            << util::format_double(d.max_weight, 2) << " (mean "
            << util::format_double(d.mean_weight, 2) << ", clipped@"
            << util::format_double(d.clip_weight, 0) << ": "
            << util::format_double(100 * d.clipped_fraction, 2) << "%)\n";
  if (report.decisions_dropped > 0) {
    std::cout << "quarantined decisions:       " << report.decisions_dropped
              << " of " << report.decisions_seen << " ("
              << util::format_double(100 * report.quarantine_rate, 1)
              << "%)\n";
  }
  if (!report.drift.features.empty()) {
    std::cout << "context drift (A1 check):    max |z| = "
              << util::format_double(report.drift.max_z, 2) << " on feature "
              << report.drift.max_feature
              << (report.warnings.empty() ? " — healthy\n" : "\n");
  }
  obs::print_warnings(std::cout, "inspect", report.warnings);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const bool diagnostics = flags.get_bool("diagnostics", false);
  const std::string trace_path = flags.get_string("trace", "");
  const std::string trace_format = flags.get_string("trace-format", "jsonl");
  if (trace_format != "jsonl" && trace_format != "chrome") {
    std::cerr << "bad --trace-format '" << trace_format
              << "' (want jsonl or chrome)\n";
    return 2;
  }
  // --threads N parallelizes the pipeline's estimator/training stages;
  // output is bit-identical for any value (see src/par/par.h).
  par::set_default_threads(
      static_cast<std::size_t>(flags.get_int("threads", 1)));

  const std::string format_flag = flags.get_string("format", "auto");
  if (format_flag != "auto" && format_flag != "text" &&
      format_flag != "hlog") {
    std::cerr << "bad --format '" << format_flag
              << "' (want auto, text, or hlog)\n";
    return 2;
  }

  std::string text;
  logs::ScavengeSpec spec;
  spec.reward_range = {flags.get_double("reward-lo", 0.0),
                       flags.get_double("reward-hi", 1.0)};
  spec.reward_transform = [](double r) { return r; };

  const bool selftest = flags.get_bool("selftest", false);
  std::string in_path;
  bool dataset_input = false;
  if (selftest) {
    text = make_demo_log();
    spec.decision_event = "decide";
    spec.context_fields = {"load"};
    spec.action_field = "choice";
    spec.reward_field = "reward";
    spec.num_actions = 3;
    spec.reward_range = {-0.5, 1.5};
  } else {
    if (flags.positional().empty()) return usage();
    in_path = flags.positional().front();
    // A dataset directory cannot be slurped — recognize it by its manifest
    // before touching the filesystem as a file.
    dataset_input = format_flag != "text" && store::is_dataset_dir(in_path);
    if (!dataset_input) {
      std::ifstream file(in_path, std::ios::binary);
      if (!file) {
        std::cerr << "cannot open " << in_path << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      text = buffer.str();
    }
  }

  const bool hlog =
      !selftest &&
      (dataset_input || format_flag == "hlog" ||
       (format_flag == "auto" && store::is_hlog(text)));

  // An HLOG corpus is self-describing, so the field-spec flags default to
  // its stored schema; a text log has no schema, so they are mandatory.
  std::optional<store::Reader> reader;
  std::optional<store::Dataset> dataset;
  if (hlog) {
    try {
      if (dataset_input) {
        dataset.emplace(store::Dataset::open(in_path));
      } else {
        reader.emplace(store::Reader::from_memory(std::move(text), in_path));
      }
    } catch (const std::exception& e) {
      std::cerr << "cannot read HLOG: " << e.what() << "\n";
      return 1;
    }
    const store::Schema& schema =
        dataset ? dataset->schema() : reader->schema();
    spec.decision_event = flags.get_string("event", schema.decision_event);
    if (flags.has("context")) {
      for (const auto piece :
           util::split(flags.get_string("context", ""), ',')) {
        spec.context_fields.emplace_back(util::trim(piece));
      }
    } else {
      spec.context_fields = schema.context_fields;
    }
    spec.action_field = flags.get_string("action", schema.action_field);
    spec.reward_field = flags.get_string("reward", schema.reward_field);
    spec.propensity_field = schema.propensity_field;
    spec.num_actions = static_cast<std::size_t>(
        flags.get_int("actions", schema.num_actions));
    spec.stale_after_seconds = schema.stale_after_seconds;
    spec.reward_range = {flags.get_double("reward-lo", schema.reward_lo),
                         flags.get_double("reward-hi", schema.reward_hi)};
  } else if (!selftest) {
    if (!flags.has("event") || !flags.has("context") ||
        !flags.has("action") || !flags.has("reward") ||
        !flags.has("actions")) {
      return usage();
    }
    spec.decision_event = flags.get_string("event", "");
    for (const auto piece :
         util::split(flags.get_string("context", ""), ',')) {
      spec.context_fields.emplace_back(util::trim(piece));
    }
    spec.action_field = flags.get_string("action", "");
    spec.reward_field = flags.get_string("reward", "");
    spec.num_actions = static_cast<std::size_t>(flags.get_int("actions", 0));
  }

  // Scan-predicate flags: pushed down to the zone-mapped binary scan.
  store::ScanPredicate predicate;
  if (flags.has("min-time")) {
    predicate.min_time = flags.get_double("min-time", predicate.min_time);
  }
  if (flags.has("max-time")) {
    predicate.max_time = flags.get_double("max-time", predicate.max_time);
  }
  if (flags.has("only-action")) {
    predicate.action =
        static_cast<std::uint32_t>(flags.get_int("only-action", 0));
  }
  if (flags.has("min-propensity")) {
    predicate.min_propensity =
        flags.get_double("min-propensity", predicate.min_propensity);
  }
  if (flags.has("max-propensity")) {
    predicate.max_propensity =
        flags.get_double("max-propensity", predicate.max_propensity);
  }
  if (predicate.min_propensity > predicate.max_propensity) {
    std::cerr << "--min-propensity must not exceed --max-propensity\n";
    return 2;
  }
  if (!predicate.trivial() && !hlog) {
    std::cerr << "--min-time/--max-time/--only-action/--min-propensity/"
                 "--max-propensity need a binary input (text logs have no "
                 "zone maps to prune against)\n";
    return 2;
  }

  // Optional chaos rehearsal: corrupt the wire-format text before the
  // hardened read path ever sees it.
  if (flags.has("inject") && hlog) {
    std::cerr << "--inject is text-only; corrupt HLOG blocks with "
                 "harvest_compact --corrupt-blocks instead\n";
    return 2;
  }
  if (flags.has("inject")) {
    try {
      const fault::FaultInjector injector(
          static_cast<std::uint64_t>(flags.get_int("inject-seed", 1)),
          fault::parse_fault_specs(flags.get_string("inject", "")));
      auto [corrupted, inj] = injector.inject_text(text);
      text = std::move(corrupted);
      std::cout << "injected faults (seed "
                << flags.get_int("inject-seed", 1) << "): " << inj.lines_in
                << " -> " << inj.lines_out << " lines; torn " << inj.torn
                << ", dup " << inj.duplicated << ", reordered "
                << inj.reordered << ", corrupted " << inj.corrupted
                << ", p-dropped " << inj.propensities_dropped
                << ", p-invalid " << inj.propensities_invalidated
                << ", t-skewed " << inj.timestamps_skewed << "\n";
    } catch (const std::exception& e) {
      std::cerr << "bad --inject spec: " << e.what() << "\n";
      return 2;
    }
  }

  // Step 0: parse (streaming text, bounded memory) or mmap-scan (HLOG).
  logs::LogStore log;
  if (dataset) {
    std::cout << "format: hlog dataset v" << store::kManifestVersion
              << " (hlog v" << store::kFormatVersion << ", "
              << dataset->manifest().shards.size() << " files, "
              << dataset->num_blocks() << " blocks, " << dataset->rows()
              << " rows, " << dataset->file_bytes() << " bytes)\n";
    for (std::size_t i = 0; i < dataset->manifest().shards.size(); ++i) {
      const store::ManifestShard& entry = dataset->manifest().shards[i];
      const store::Reader& part = dataset->readers()[i];
      std::cout << "  " << entry.file << ": " << part.rows() << " rows, "
                << part.shards().size() << " shards, " << part.num_blocks()
                << " blocks, " << part.file_bytes() << " bytes";
      if (part.counts().total_dropped() > 0) {
        std::cout << " (" << part.counts().total_dropped()
                  << " quarantined at compaction)";
      }
      std::cout << "\n";
    }
    if (dataset->rows() == 0) {
      std::cerr << "HLOG dataset holds no decision rows\n";
      return 1;
    }
  } else if (hlog) {
    std::cout << "format: hlog v" << store::kFormatVersion << " ("
              << reader->shards().size() << " shards, "
              << reader->num_blocks() << " blocks, " << reader->rows()
              << " rows, " << reader->file_bytes() << " bytes)\n";
    if (reader->rows() == 0) {
      std::cerr << "HLOG corpus holds no decision rows\n";
      return 1;
    }
  } else {
    std::cout << "format: text\n";
    std::istringstream stream(text);
    auto [parsed, read_stats] = logs::LogStore::read_text_chunked(stream);
    log = std::move(parsed);
    std::cout << "parsed " << log.size() << " records ("
              << read_stats.skipped() << " malformed lines skipped)\n";
    if (log.empty()) return 1;
  }

  // Steps 1-3 through the instrumented pipeline: scavenge, infer
  // propensities, evaluate every constant (per-action) policy.
  pipeline::PipelineConfig config;
  config.spec = spec;
  config.inference = std::make_shared<core::EmpiricalPropensityModel>(
      spec.num_actions, std::vector<std::size_t>{});
  config.estimator = std::make_shared<core::IpsEstimator>();
  config.obs_label = "inspect";
  config.diagnostics_warnings = false;  // surfaced via --diagnostics instead
  config.scan_predicate = predicate;

  std::vector<core::PolicyPtr> candidates;
  for (std::size_t a = 0; a < spec.num_actions; ++a) {
    candidates.push_back(std::make_shared<core::ConstantPolicy>(
        spec.num_actions, static_cast<core::ActionId>(a)));
  }

  core::ExplorationDataset data(spec.num_actions, spec.reward_range);
  pipeline::HarvestReport report;
  try {
    report = dataset ? pipeline::evaluate_candidates(*dataset, config,
                                                     candidates, &data)
             : hlog ? pipeline::evaluate_candidates(*reader, config,
                                                    candidates, &data)
                    : pipeline::evaluate_candidates(log, config, candidates,
                                                    &data);
  } catch (const std::exception& e) {
    std::cerr << "pipeline failed: " << e.what() << "\n";
    return 1;
  }
  std::cout << "decisions: " << report.records_seen << " records seen, "
            << "harvested " << report.decisions_harvested << " tuples, "
            << "dropped " << report.decisions_dropped << "\n";
  if (!predicate.trivial()) {
    // One-shot binary, so the global counters are exactly this scan.
    obs::Registry& registry = obs::Registry::global();
    const double pruned =
        registry.counter("store_blocks_pruned_total").value();
    const double touched =
        registry.counter("store_blocks_scanned_total").value();
    std::cout << "pruning: predicate [" << predicate.describe()
              << "] skipped " << static_cast<std::uint64_t>(pruned) << " of "
              << static_cast<std::uint64_t>(pruned + touched)
              << " blocks without touching their bytes\n";
  }
  if (report.decisions_dropped > 0) {
    std::cout << "quarantine: missing-field " << report.dropped_missing_fields
              << ", bad-action " << report.dropped_bad_action
              << ", bad-propensity " << report.dropped_bad_propensity
              << ", stale-timestamp " << report.dropped_stale_timestamp
              << ", corrupt-block " << report.dropped_corrupt_block
              << " (" << util::format_double(100 * report.quarantine_rate, 1)
              << "% of decisions)\n";
  }
  if (report.decisions_harvested < 50) {
    std::cerr << "not enough exploration data to analyze\n";
    return 1;
  }
  std::cout << "inferred propensity floor (epsilon): "
            << util::format_double(report.min_propensity, 4) << "\n";

  const core::BoundParams params;
  std::cout << "Eq. 1 width for evaluating 1e6 policies on this log: "
            << util::format_double(
                   core::cb_ci_width(static_cast<double>(data.size()), 1e6,
                                     report.min_propensity, params),
                   4)
            << "\n\n";

  // Step 3a: per-action (constant-policy) offline estimates.
  util::Table table({"policy", "IPS estimate", "95% CI", "ESS"});
  for (const auto& candidate : report.candidates) {
    table.add_row({candidate.policy_name,
                   util::format_double(candidate.estimate.value, 4),
                   ci_string(candidate.estimate),
                   util::format_double(candidate.diagnostics.ess, 0)});
  }

  // Step 3b: train on half, evaluate offline on the other half.
  {
    obs::ScopedSpan span("inspect.train_and_holdout");
    util::Rng rng(7);
    data.shuffle(rng);
    const auto [train, test] = data.split(0.5);
    const core::PolicyPtr cb = [&] {
      obs::ScopedSpan train_span("inspect.train_cb");
      return core::train_cb_policy(train, {});
    }();
    obs::ScopedSpan eval_span("inspect.holdout_estimate");
    const core::IpsEstimator ips;
    const core::Estimate cb_est = ips.evaluate(test, *cb);
    table.add_row({"trained CB policy", util::format_double(cb_est.value, 4),
                   ci_string(cb_est), util::format_double(cb_est.ess, 0)});
  }
  table.print(std::cout);

  if (diagnostics) print_diagnostics(report);

  std::cout << "\nThe CB policy's estimate comes from held-out data — if its "
               "CI clears the incumbents', it is deployable evidence.\n";

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "cannot write trace to " << trace_path << "\n";
      return 1;
    }
    if (trace_format == "chrome") {
      obs::Recorder& recorder = obs::Recorder::global();
      recorder.write_chrome_trace(trace_file);
      std::cout << "trace: " << recorder.trace_size()
                << " events written to " << trace_path << "\n";
    } else {
      obs::Tracer::global().write_jsonl(trace_file);
      std::cout << "trace: " << obs::Tracer::global().snapshot().size()
                << " spans written to " << trace_path << "\n";
    }
  }
  return 0;
}
