// harvest_inspect — command-line harvesting of a text log file.
//
// Point it at any log in the key=value record format and it will:
//   1. parse the file (reporting torn/malformed lines),
//   2. scavenge ⟨context, action, reward⟩ tuples per your field spec,
//   3. infer propensities from the action frequencies (step 2),
//   4. report the harvested exploration quality: min propensity, Eq. 1
//      optimization potential, per-action estimates, and the offline value
//      of a CB policy trained on half the data and IPS-evaluated on the
//      other half.
//
// Usage:
//   harvest_inspect <logfile> --event decide --context x,y --action a
//                   --reward r --actions 3 [--reward-lo 0 --reward-hi 1]
//   harvest_inspect --selftest        # generate and process a demo log
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "harvest/harvest.h"
#include "util/flags.h"

namespace {

using namespace harvest;

int usage() {
  std::cerr
      << "usage: harvest_inspect <logfile> --event EV --context F1,F2,...\n"
         "                       --action FIELD --reward FIELD --actions N\n"
         "                       [--reward-lo X] [--reward-hi Y]\n"
         "       harvest_inspect --selftest\n";
  return 2;
}

/// Writes a demo log (a randomized 3-action system) to a stringstream.
std::string make_demo_log() {
  util::Rng rng(123);
  logs::LogStore log;
  for (int i = 0; i < 4000; ++i) {
    const double load = rng.uniform(0.0, 10.0);
    const auto action = static_cast<core::ActionId>(rng.uniform_index(3));
    const double reward =
        0.5 + 0.04 * static_cast<double>(action) * (load - 5.0) +
        rng.normal(0.0, 0.05);
    logs::Record rec;
    rec.time = i * 0.5;
    rec.event = "decide";
    rec.set("load", load);
    rec.set("choice", static_cast<std::int64_t>(action));
    rec.set("reward", reward);
    log.append(std::move(rec));
  }
  std::ostringstream out;
  log.write_text(out);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  std::string text;
  logs::ScavengeSpec spec;
  spec.reward_range = {flags.get_double("reward-lo", 0.0),
                       flags.get_double("reward-hi", 1.0)};
  spec.reward_transform = [](double r) { return r; };

  if (flags.get_bool("selftest", false)) {
    text = make_demo_log();
    spec.decision_event = "decide";
    spec.context_fields = {"load"};
    spec.action_field = "choice";
    spec.reward_field = "reward";
    spec.num_actions = 3;
    spec.reward_range = {-0.5, 1.5};
  } else {
    if (flags.positional().empty() || !flags.has("event") ||
        !flags.has("context") || !flags.has("action") ||
        !flags.has("reward") || !flags.has("actions")) {
      return usage();
    }
    std::ifstream file(flags.positional().front());
    if (!file) {
      std::cerr << "cannot open " << flags.positional().front() << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
    spec.decision_event = flags.get_string("event", "");
    for (const auto piece :
         util::split(flags.get_string("context", ""), ',')) {
      spec.context_fields.emplace_back(util::trim(piece));
    }
    spec.action_field = flags.get_string("action", "");
    spec.reward_field = flags.get_string("reward", "");
    spec.num_actions = static_cast<std::size_t>(flags.get_int("actions", 0));
  }

  // Step 0: parse.
  std::istringstream stream(text);
  const auto [log, skipped] = logs::LogStore::read_text(stream);
  std::cout << "parsed " << log.size() << " records (" << skipped
            << " malformed lines skipped)\n";
  if (log.empty()) return 1;

  // Steps 1-2: scavenge + infer.
  const logs::ScavengeResult scavenged = logs::scavenge(log, spec);
  std::cout << "decisions: " << scavenged.decisions_seen << ", harvested "
            << scavenged.data.size() << " tuples, dropped "
            << scavenged.dropped_missing_fields + scavenged.dropped_bad_action
            << "\n";
  if (scavenged.data.size() < 50) {
    std::cerr << "not enough exploration data to analyze\n";
    return 1;
  }
  core::EmpiricalPropensityModel inference(spec.num_actions, {});
  inference.fit(scavenged.data);
  core::ExplorationDataset data =
      core::annotate_propensities(scavenged.data, inference);
  std::cout << "inferred propensity floor (epsilon): "
            << util::format_double(data.min_propensity(), 4) << "\n";

  const core::BoundParams params;
  std::cout << "Eq. 1 width for evaluating 1e6 policies on this log: "
            << util::format_double(
                   core::cb_ci_width(static_cast<double>(data.size()), 1e6,
                                     data.min_propensity(), params),
                   4)
            << "\n\n";

  // Step 3a: per-action (constant-policy) offline estimates.
  const core::IpsEstimator ips;
  util::Table table({"policy", "IPS estimate", "95% CI"});
  for (std::size_t a = 0; a < spec.num_actions; ++a) {
    const core::ConstantPolicy constant(spec.num_actions,
                                        static_cast<core::ActionId>(a));
    const core::Estimate est = ips.evaluate(data, constant);
    table.add_row({constant.name(), util::format_double(est.value, 4),
                   "[" + util::format_double(est.normal_ci.lo, 4) + ", " +
                       util::format_double(est.normal_ci.hi, 4) + "]"});
  }

  // Step 3b: train on half, evaluate offline on the other half.
  util::Rng rng(7);
  data.shuffle(rng);
  const auto [train, test] = data.split(0.5);
  const core::PolicyPtr cb = core::train_cb_policy(train, {});
  const core::Estimate cb_est = ips.evaluate(test, *cb);
  table.add_row({"trained CB policy", util::format_double(cb_est.value, 4),
                 "[" + util::format_double(cb_est.normal_ci.lo, 4) + ", " +
                     util::format_double(cb_est.normal_ci.hi, 4) + "]"});
  table.print(std::cout);

  std::cout << "\nThe CB policy's estimate comes from held-out data — if its "
               "CI clears the incumbents', it is deployable evidence.\n";
  return 0;
}
