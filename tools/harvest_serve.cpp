// Closed-loop serving driver: the paper's harvest loop running online.
//
//   serve (DecisionService, eps-greedy over the current PolicySnapshot)
//     -> log  (per-decider SPSC rings -> store::DatasetWriter, HLOG)
//     -> scavenge (logs::scavenge over the round's dataset)
//     -> retrain (SnapshotTrainer: importance-weighted ridge)
//     -> publish (atomic snapshot swap; deciders never stall)
//     -> serve the next round ...
//
// Round 0 serves the uniform snapshot (the pre-optimization randomized
// heuristic whose randomness the loop harvests); every later round serves
// the snapshot retrained from the previous round's own logs. The simulated
// environment draws contexts uniformly and pays a per-action linear reward,
// so the mean observed reward should climb across rounds — `--check-
// improvement` turns that into an exit code, which is how ci.sh smoke-tests
// the loop end to end.
//
// Flags:
//   --rounds N             serving rounds after round 0        (default 3)
//   --decisions N          decisions per round, all threads    (default 20000)
//   --threads N            decider threads                     (default 2)
//   --actions K --dim D    action count / context arity        (3 / 4)
//   --epsilon E            exploration mass of retrained snaps (0.2)
//   --seed S               root seed                           (42)
//   --workdir DIR          where round datasets land           (serve_loop)
//   --snapshot-dir DIR     persist every published snapshot (crash-safe
//                          temp+rename; snapshot-<id>.hsnap + CURRENT)
//   --resume               warm-start from --snapshot-dir's CURRENT instead
//                          of uniform round 0; corrupt files are
//                          quarantined with a fallback, never fatal
//   --check-improvement    exit 1 unless final mean reward > round 0's
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "logs/scavenger.h"
#include "serve/persist.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/trainer.h"
#include "store/dataset.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/rng.h"

namespace {

using namespace harvest;

/// The simulated environment: action a in context x pays
/// clamp01(w_a · [1, x]) plus small uniform noise. Linear in the features,
/// so the ridge retrain can actually learn it.
struct Environment {
  std::vector<std::vector<double>> true_weights;  // [action][dim+1]

  double reward(std::span<const double> x, std::uint32_t action,
                util::Rng& rng) const {
    const auto& w = true_weights[action];
    double r = w[0];
    for (std::size_t i = 0; i < x.size(); ++i) r += w[1 + i] * x[i];
    r += rng.uniform(-0.05, 0.05);
    return std::clamp(r, 0.0, 1.0);
  }
};

store::Schema make_schema(std::size_t num_actions, std::size_t dim) {
  store::Schema schema;
  schema.decision_event = "serve";
  for (std::size_t i = 0; i < dim; ++i) {
    schema.context_fields.push_back("x" + std::to_string(i));
  }
  schema.action_field = "action";
  schema.reward_field = "reward";
  schema.propensity_field = "propensity";
  schema.num_actions = static_cast<std::uint32_t>(num_actions);
  schema.reward_lo = 0;
  schema.reward_hi = 1;
  return schema;
}

logs::ScavengeSpec make_spec(const store::Schema& schema) {
  logs::ScavengeSpec spec;
  spec.decision_event = schema.decision_event;
  spec.context_fields = schema.context_fields;
  spec.action_field = schema.action_field;
  spec.reward_field = schema.reward_field;
  spec.propensity_field = schema.propensity_field;
  spec.reward_transform = [](double r) { return r; };
  spec.num_actions = schema.num_actions;
  spec.reward_range = {schema.reward_lo, schema.reward_hi};
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 3));
  const auto decisions =
      static_cast<std::size_t>(flags.get_int("decisions", 20000));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 2));
  const auto num_actions =
      static_cast<std::size_t>(flags.get_int("actions", 3));
  const auto dim = static_cast<std::size_t>(flags.get_int("dim", 4));
  const double epsilon = flags.get_double("epsilon", 0.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string workdir = flags.get_string("workdir", "serve_loop");
  const std::string snapshot_dir = flags.get_string("snapshot-dir", "");
  const bool resume = flags.get_bool("resume", false);
  const bool check_improvement = flags.get_bool("check-improvement", false);

  if (threads == 0 || decisions == 0 || num_actions == 0 ||
      dim > serve::kMaxContextDim) {
    std::fprintf(stderr, "harvest_serve: bad geometry\n");
    return 2;
  }
  if (resume && snapshot_dir.empty()) {
    std::fprintf(stderr, "harvest_serve: --resume requires --snapshot-dir\n");
    return 2;
  }

  // A learnable environment with clearly separated actions.
  util::Rng env_rng(util::derive_stream_seed(seed, 1000));
  Environment env;
  env.true_weights.assign(num_actions, std::vector<double>(dim + 1));
  for (auto& w : env.true_weights) {
    for (auto& v : w) v = env_rng.uniform(-0.4, 0.4);
    w[0] += 0.5;  // keep rewards centered inside [0, 1]
  }

  const std::size_t per_thread = (decisions + threads - 1) / threads;
  std::size_t ring = 2;
  while (ring < per_thread + 1) ring <<= 1;

  std::unique_ptr<serve::SnapshotStore> store;
  if (!snapshot_dir.empty()) {
    store = std::make_unique<serve::SnapshotStore>(
        serve::SnapshotStore::Options{.dir = snapshot_dir});
  }

  const serve::DecisionService::Options service_options{
      .num_actions = num_actions,
      .dim = dim,
      .log_capacity = ring,
      .seed = seed};
  std::unique_ptr<serve::DecisionService> service_owner;
  if (resume) {
    // Warm restart: a killed-and-restarted loop continues from the last
    // published policy instead of re-paying uniform exploration. Damaged
    // files were quarantined by the store (never fatal); an empty or fully
    // corrupt store already printed its fallback warning.
    serve::ResumeResult resumed = serve::resume_service(service_options,
                                                        *store);
    if (resumed.resumed) {
      std::printf("resumed from snapshot id=%llu%s\n",
                  static_cast<unsigned long long>(resumed.snapshot_id),
                  resumed.quarantined > 0 ? " (after quarantine fallback)"
                                          : "");
    }
    service_owner = std::move(resumed.service);
  } else {
    service_owner = std::make_unique<serve::DecisionService>(
        service_options, serve::PolicySnapshot::uniform(1, num_actions, dim));
  }
  serve::DecisionService& service = *service_owner;
  std::vector<serve::Decider*> deciders;
  for (std::size_t t = 0; t < threads; ++t) {
    deciders.push_back(&service.add_decider());
  }
  serve::SnapshotTrainer trainer(
      service, {.epsilon = epsilon, .min_rows = 32, .reward_range = {0, 1}});

  const store::Schema schema = make_schema(num_actions, dim);
  const logs::ScavengeSpec spec = make_spec(schema);
  std::filesystem::create_directories(workdir);

  std::vector<double> round_means;
  for (std::size_t round = 0; round <= rounds; ++round) {
    // ---- serve one round --------------------------------------------------
    std::vector<double> sums(threads, 0.0);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::Rng ctx_rng(
            util::derive_stream_seed(seed ^ (round + 1), 2 * t));
        util::Rng env_noise(
            util::derive_stream_seed(seed ^ (round + 1), 2 * t + 1));
        double ctx[serve::kMaxContextDim] = {};
        const std::span<const double> span(ctx, dim);
        for (std::size_t i = 0; i < per_thread; ++i) {
          for (std::size_t d = 0; d < dim; ++d) ctx[d] = ctx_rng.uniform();
          const serve::Decision dec = deciders[t]->decide(span);
          const double r = env.reward(span, dec.action, env_noise);
          deciders[t]->log_reward(r);
          sums[t] += r;
        }
      });
    }
    for (auto& w : workers) w.join();
    double mean = 0;
    for (double s : sums) mean += s;
    mean /= static_cast<double>(per_thread * threads);
    round_means.push_back(mean);

    // ---- log the round to HLOG -------------------------------------------
    const std::string round_dir =
        workdir + "/round-" + std::to_string(round);
    // A resumed run re-serves round numbers a killed predecessor may have
    // half-written; start each round's dataset from a clean slate.
    std::error_code stale_ec;
    std::filesystem::remove_all(round_dir, stale_ec);
    store::DatasetWriter writer(round_dir, schema);
    const serve::ServeDrainStats stats =
        service.drain([&writer](const serve::DecisionRecord& rec) {
          writer.add(rec.time, std::span<const double>(rec.context, rec.dim),
                     rec.action, rec.reward, rec.propensity);
        });
    writer.finish();
    if (stats.dropped_total != 0) {
      std::fprintf(stderr, "harvest_serve: %llu records dropped (ring too "
                           "small for the round)\n",
                   static_cast<unsigned long long>(stats.dropped_total));
      return 1;
    }

    std::printf("round %zu: snapshot=%llu mean_reward=%.4f logged=%zu\n",
                round, static_cast<unsigned long long>(service.current_id()),
                mean, stats.drained);

    if (round == rounds) break;

    // ---- scavenge the round's own logs and retrain ------------------------
    const store::Dataset dataset = store::Dataset::open(round_dir);
    const logs::ScavengeResult harvested = logs::scavenge(dataset, spec);
    if (harvested.data.empty()) {
      std::fprintf(stderr, "harvest_serve: scavenge returned no tuples\n");
      return 1;
    }
    // The service mints the snapshot id under its publish lock (race-free
    // even with concurrent publishers); persist the published bytes so a
    // kill at any point leaves a resumable store.
    std::string snapshot_bytes;
    const std::uint64_t published_id =
        service.publish_with([&](std::uint64_t id) {
          auto snapshot = trainer.train_on(harvested.data, id);
          if (store != nullptr) snapshot_bytes = snapshot->serialize();
          return snapshot;
        });
    if (store != nullptr) store->save_bytes(published_id, snapshot_bytes);
    service.try_reclaim();
  }

  service.reclaim_all();
  std::printf("rounds=%zu first_mean=%.4f last_mean=%.4f swaps=%llu "
              "reclaimed=%llu\n",
              rounds, round_means.front(), round_means.back(),
              static_cast<unsigned long long>(service.swaps()),
              static_cast<unsigned long long>(service.reclaimed()));

  if (check_improvement && round_means.back() <= round_means.front()) {
    std::fprintf(stderr,
                 "harvest_serve: no improvement (%.4f -> %.4f)\n",
                 round_means.front(), round_means.back());
    return 1;
  }
  return 0;
}
