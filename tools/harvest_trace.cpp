// harvest_trace — offline analyzer for flight-recorder trace dumps.
//
// Ingests either of the two trace encodings the repo emits:
//   - Chrome Trace Event JSON (bench --trace-out trace.json, or
//     harvest_inspect --trace t.json --trace-format chrome), including the
//     pool/store/fault events recorded off the span API, or
//   - legacy span JSONL (harvest_inspect --trace spans.jsonl), one
//     {"id","parent","name",...} object per line,
// and reports:
//   1. per-stage aggregate timings (count / total / mean / max per name),
//      plus a per-name tally of instant events (e.g. store.prune_block),
//   2. the top-N slowest individual spans,
//   3. per-worker utilization and steal balance (from par.task events:
//      a=stolen flag, b=victim queue),
//   4. the critical path of the longest root span — the chain of slowest
//      descendants, with self-time per hop.
//
// Nesting comes from explicit parent ids when present (scope spans, JSONL)
// and interval containment within a thread otherwise (recorder-native
// spans), so both encodings produce the same shape of report.
//
// Usage:
//   harvest_trace trace.json [--top 10] [--stage-prefix pipeline.]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using harvest::util::Flags;
using harvest::util::Table;
using harvest::util::format_double;

/// One duration event, normalized from either encoding. Times are in
/// microseconds from the trace epoch.
struct Span {
  std::string name;
  double ts = 0;
  double dur = 0;
  int tid = 0;
  std::uint64_t id = 0;      // 0 when the encoding carries no id
  std::uint64_t parent = 0;  // 0 = root / unknown
  bool has_ids = false;
  // par.task payload (chrome "a"/"b" args): was the task stolen, and from
  // whom.
  std::optional<std::uint64_t> arg_a, arg_b;
};

struct Trace {
  std::vector<Span> spans;
  std::map<int, std::string> thread_names;
  std::map<std::string, std::size_t> instants_by_name;
  std::size_t instants = 0;
  std::size_t counters = 0;
};

// --- minimal JSON field scraping -----------------------------------------
// Both encodings are emitted by this repo one object per line, so a
// line-oriented scraper is exact for our own output and tolerant of
// hand-edited files.

std::optional<double> find_number(const std::string& line,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return v;
}

std::optional<std::string> find_string(const std::string& line,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      ++pos;
      switch (line[pos]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += line[pos];
      }
    } else {
      out += line[pos];
    }
    ++pos;
  }
  return out;
}

/// Parses one trace file. Chrome dumps are detected by the traceEvents
/// envelope; anything else is treated as span JSONL.
std::optional<Trace> parse_trace(std::istream& in) {
  Trace trace;
  std::string first_line;
  if (!std::getline(in, first_line)) return std::nullopt;
  const bool chrome =
      first_line.find("\"traceEvents\"") != std::string::npos;

  std::string line = chrome ? "" : first_line;
  bool saw_close = false;
  do {
    if (line.empty()) continue;
    // Chrome body lines end with "," or "}"; the final "]}"" closes the
    // envelope.
    if (chrome && line.find("]}") == 0) {
      saw_close = true;
      continue;
    }
    const auto name = find_string(line, "name");
    if (!name) continue;
    if (chrome) {
      const auto ph = find_string(line, "ph");
      if (!ph) return std::nullopt;  // not Trace Event shaped after all
      const int tid = static_cast<int>(find_number(line, "tid").value_or(0));
      if (*ph == "M") {
        // thread_name metadata: args.name holds the label, but find_string
        // on "name" already matched the metadata key — re-scrape inside
        // args.
        const auto args_at = line.find("\"args\"");
        if (args_at != std::string::npos) {
          const auto label = find_string(line.substr(args_at), "name");
          if (label) trace.thread_names[tid] = *label;
        }
        continue;
      }
      if (*ph == "i") {
        ++trace.instants;
        ++trace.instants_by_name[*name];
        continue;
      }
      if (*ph == "C") {
        ++trace.counters;
        continue;
      }
      if (*ph != "X") continue;
      Span span;
      span.name = *name;
      span.tid = tid;
      span.ts = find_number(line, "ts").value_or(0);
      span.dur = find_number(line, "dur").value_or(0);
      if (const auto id = find_number(line, "id")) {
        span.id = static_cast<std::uint64_t>(*id);
        span.parent = static_cast<std::uint64_t>(
            find_number(line, "parent").value_or(0));
        span.has_ids = true;
      }
      if (const auto a = find_number(line, "a")) {
        span.arg_a = static_cast<std::uint64_t>(*a);
      }
      if (const auto b = find_number(line, "b")) {
        span.arg_b = static_cast<std::uint64_t>(*b);
      }
      trace.spans.push_back(std::move(span));
    } else {
      // Legacy JSONL: {"id":..,"parent":..,"name":"..","start_us":..,
      // "duration_us":..,"depth":..}
      const auto id = find_number(line, "id");
      const auto start = find_number(line, "start_us");
      const auto dur = find_number(line, "duration_us");
      if (!id || !start || !dur) return std::nullopt;
      Span span;
      span.name = *name;
      span.ts = *start;
      span.dur = *dur;
      span.id = static_cast<std::uint64_t>(*id);
      span.parent = static_cast<std::uint64_t>(
          find_number(line, "parent").value_or(0));
      span.has_ids = true;
      trace.spans.push_back(std::move(span));
    }
  } while (std::getline(in, line));
  if (chrome && !saw_close) return std::nullopt;  // truncated dump
  return trace;
}

// --- nesting -------------------------------------------------------------

/// children[i] lists span indices nested directly under span i; `roots`
/// lists top-level spans. Explicit parent ids win; spans without ids nest
/// by interval containment within their thread.
struct Forest {
  std::vector<std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
};

Forest build_forest(const std::vector<Span>& spans) {
  Forest forest;
  forest.children.resize(spans.size());
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].has_ids && spans[i].id != 0) by_id[spans[i].id] = i;
  }
  // Containment pass, per tid: sweep by start time keeping a stack of open
  // spans; the innermost open interval that contains a span is its parent.
  std::map<int, std::vector<std::size_t>> by_tid;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_tid[spans[i].tid].push_back(i);
  }
  std::vector<std::optional<std::size_t>> parent_of(spans.size());
  for (auto& [tid, indices] : by_tid) {
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t x, std::size_t y) {
                if (spans[x].ts != spans[y].ts) {
                  return spans[x].ts < spans[y].ts;
                }
                return spans[x].dur > spans[y].dur;  // outermost first
              });
    std::vector<std::size_t> stack;
    for (const std::size_t i : indices) {
      while (!stack.empty() &&
             spans[stack.back()].ts + spans[stack.back()].dur <
                 spans[i].ts + spans[i].dur) {
        stack.pop_back();
      }
      if (!stack.empty()) parent_of[i] = stack.back();
      stack.push_back(i);
    }
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    std::optional<std::size_t> parent;
    if (spans[i].has_ids && spans[i].parent != 0) {
      const auto it = by_id.find(spans[i].parent);
      if (it != by_id.end()) parent = it->second;
    } else if (!spans[i].has_ids) {
      parent = parent_of[i];
    }
    if (parent) {
      forest.children[*parent].push_back(i);
    } else {
      forest.roots.push_back(i);
    }
  }
  return forest;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::cerr << "usage: harvest_trace <trace.json|spans.jsonl> [--top N]\n"
                 "                     [--stage-prefix PFX]\n";
    return 2;
  }
  const auto top_n =
      static_cast<std::size_t>(std::max<std::int64_t>(
          flags.get_int("top", 10), 1));
  const std::string stage_prefix = flags.get_string("stage-prefix", "");

  std::ifstream file(flags.positional().front());
  if (!file) {
    std::cerr << "cannot open " << flags.positional().front() << "\n";
    return 1;
  }
  const auto parsed = parse_trace(file);
  if (!parsed) {
    std::cerr << "not a recognizable trace dump (want Chrome Trace Event "
                 "JSON or span JSONL)\n";
    return 1;
  }
  const Trace& trace = *parsed;
  if (trace.spans.empty()) {
    std::cerr << "trace holds no duration events\n";
    return 1;
  }

  double t_min = trace.spans.front().ts;
  double t_max = 0;
  for (const auto& s : trace.spans) {
    t_min = std::min(t_min, s.ts);
    t_max = std::max(t_max, s.ts + s.dur);
  }
  const double wall_us = t_max - t_min;
  std::cout << "trace: " << trace.spans.size() << " spans, "
            << trace.instants << " instants, " << trace.counters
            << " counter samples over "
            << format_double(wall_us / 1000.0, 3) << " ms\n";

  // 1. Per-stage aggregates.
  struct Agg {
    std::size_t count = 0;
    double total = 0, max = 0;
  };
  std::map<std::string, Agg> stages;
  for (const auto& s : trace.spans) {
    if (!stage_prefix.empty() && s.name.rfind(stage_prefix, 0) != 0) {
      continue;
    }
    Agg& agg = stages[s.name];
    ++agg.count;
    agg.total += s.dur;
    agg.max = std::max(agg.max, s.dur);
  }
  std::vector<std::pair<std::string, Agg>> ordered(stages.begin(),
                                                   stages.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& x, const auto& y) {
    return x.second.total > y.second.total;
  });
  std::cout << "\n== per-stage aggregate timings ==\n";
  Table stage_table({"stage", "count", "total ms", "mean us", "max us"});
  for (const auto& [name, agg] : ordered) {
    stage_table.add_row(
        {name, std::to_string(agg.count),
         format_double(agg.total / 1000.0, 3),
         format_double(agg.total / static_cast<double>(agg.count), 1),
         format_double(agg.max, 1)});
  }
  stage_table.print(std::cout);

  // 1b. Instant events by name (store.prune_block, fault injections, ...).
  // Zero-duration marks never show in the timing table, but their counts
  // are the whole story for events like zone-map pruning.
  if (!trace.instants_by_name.empty()) {
    std::vector<std::pair<std::string, std::size_t>> marks(
        trace.instants_by_name.begin(), trace.instants_by_name.end());
    std::sort(marks.begin(), marks.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
    std::cout << "\n== instant events ==\n";
    Table instant_table({"event", "count"});
    for (const auto& [name, count] : marks) {
      instant_table.add_row({name, std::to_string(count)});
    }
    instant_table.print(std::cout);
  }

  // 2. Top-N slowest spans.
  std::vector<std::size_t> slowest(trace.spans.size());
  for (std::size_t i = 0; i < slowest.size(); ++i) slowest[i] = i;
  std::sort(slowest.begin(), slowest.end(), [&](std::size_t x, std::size_t y) {
    return trace.spans[x].dur > trace.spans[y].dur;
  });
  std::cout << "\n== top " << std::min(top_n, slowest.size())
            << " slowest spans ==\n";
  Table slow_table({"span", "thread", "start ms", "duration us"});
  for (std::size_t k = 0; k < std::min(top_n, slowest.size()); ++k) {
    const Span& s = trace.spans[slowest[k]];
    const auto tn = trace.thread_names.find(s.tid);
    slow_table.add_row({s.name,
                        tn != trace.thread_names.end()
                            ? tn->second
                            : "tid-" + std::to_string(s.tid),
                        format_double((s.ts - t_min) / 1000.0, 3),
                        format_double(s.dur, 1)});
  }
  slow_table.print(std::cout);

  // 3. Per-worker utilization + steal balance from par.task events.
  struct Worker {
    std::size_t tasks = 0, stolen = 0;
    double busy = 0;
  };
  std::map<int, Worker> workers;
  for (const auto& s : trace.spans) {
    if (s.name != "par.task") continue;
    Worker& w = workers[s.tid];
    ++w.tasks;
    w.busy += s.dur;
    if (s.arg_a.value_or(0) == 1) ++w.stolen;
  }
  if (!workers.empty() && wall_us > 0) {
    std::cout << "\n== per-worker utilization (par.task) ==\n";
    Table worker_table(
        {"thread", "tasks", "stolen", "busy ms", "utilization"});
    for (const auto& [tid, w] : workers) {
      const auto tn = trace.thread_names.find(tid);
      worker_table.add_row(
          {tn != trace.thread_names.end() ? tn->second
                                          : "tid-" + std::to_string(tid),
           std::to_string(w.tasks), std::to_string(w.stolen),
           format_double(w.busy / 1000.0, 3),
           format_double(100.0 * w.busy / wall_us, 1) + "%"});
    }
    worker_table.print(std::cout);
  }

  // 4. Critical path: from the longest root span, repeatedly descend into
  // the slowest direct child; the gap between a hop and its children is
  // self-time.
  const Forest forest = build_forest(trace.spans);
  if (!forest.roots.empty()) {
    std::size_t at = forest.roots.front();
    for (const std::size_t r : forest.roots) {
      if (trace.spans[r].dur > trace.spans[at].dur) at = r;
    }
    std::cout << "\n== critical path (longest root, slowest child chain) "
                 "==\n";
    for (;;) {
      const Span& s = trace.spans[at];
      double child_total = 0;
      for (const std::size_t c : forest.children[at]) {
        child_total += trace.spans[c].dur;
      }
      const double self_us = std::max(0.0, s.dur - child_total);
      std::cout << s.name << "  " << format_double(s.dur / 1000.0, 3)
                << " ms (self " << format_double(self_us / 1000.0, 3)
                << " ms)\n";
      if (forest.children[at].empty()) break;
      std::size_t next = forest.children[at].front();
      for (const std::size_t c : forest.children[at]) {
        if (trace.spans[c].dur > trace.spans[next].dur) next = c;
      }
      std::cout << "  \\-> ";
      at = next;
    }
  }
  return 0;
}
