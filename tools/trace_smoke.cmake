# End-to-end smoke for the flight-recorder trace tooling, run as a ctest:
#   1. run harvest_inspect --selftest twice, dumping the same run as legacy
#      span JSONL and as Chrome Trace Event JSON,
#   2. feed both dumps to harvest_trace — the analyzer must parse either
#      encoding and produce a report containing the per-stage table and the
#      critical path,
#   3. reject garbage input with a nonzero exit.
# Driven by: cmake -DINSPECT=... -DTRACE=... -DWORK_DIR=... -P this_file
file(MAKE_DIRECTORY ${WORK_DIR})
set(JSONL ${WORK_DIR}/spans.jsonl)
set(CHROME ${WORK_DIR}/trace.json)

function(run outvar)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

run(_ ${INSPECT} --selftest --trace ${JSONL} --trace-format jsonl)
run(_ ${INSPECT} --selftest --trace ${CHROME} --trace-format chrome)

foreach(dump ${JSONL} ${CHROME})
  run(report ${TRACE} ${dump})
  foreach(want "per-stage aggregate timings" "critical path"
          "pipeline.scavenge")
    string(FIND "${report}" "${want}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR
              "harvest_trace report for ${dump} lacks '${want}':\n${report}")
    endif()
  endforeach()
endforeach()

# Garbage input must be rejected, not crash or report nonsense.
file(WRITE ${WORK_DIR}/garbage.json "this is not a trace\n")
execute_process(COMMAND ${TRACE} ${WORK_DIR}/garbage.json
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "harvest_trace accepted garbage input")
endif()
